"""Tests for the Unfold translator (paper §4.1.3)."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError, UnsupportedQueryError
from repro.translate.plan import SelectionKind
from repro.translate.unfold import translate_unfold
from repro.xmlkit.schema import SchemaGraph
from repro.xpath.parser import parse_xpath
from repro.xpath.query_tree import build_query_tree
from tests.conftest import EXAMPLE_QUERY


def plan_for(system, text):
    return system.translate(text, "unfold").plan


def test_requires_a_schema(protein_indexed):
    tree = build_query_tree(parse_xpath("/a/b"))
    with pytest.raises(SchemaError):
        translate_unfold(tree, protein_indexed.scheme, None)


def test_every_selection_is_an_equality(protein_system):
    for text in (EXAMPLE_QUERY, "//author", "/ProteinDatabase//title", "//refinfo[citation]/title"):
        plan = plan_for(protein_system, text)
        for branch in plan.non_empty_branches():
            for selection in branch.selections:
                assert selection.kind is SelectionKind.PLABEL_EQ, (text, selection)


def test_interior_descendant_step_unfolds_to_the_schema_path(protein_system):
    plan = plan_for(protein_system, '/ProteinDatabase/ProteinEntry/protein//superfamily')
    assert len(plan.branches) == 1
    selection = plan.branches[0].selections[0]
    assert selection.description == (
        "/ProteinDatabase/ProteinEntry/protein/classification/superfamily"
    )
    assert plan.branches[0].joins == []


def test_pure_path_query_has_no_joins(protein_system):
    plan = plan_for(protein_system, "/ProteinDatabase/ProteinEntry//author")
    assert all(branch.joins == [] for branch in plan.branches)
    assert len(plan.branches) == 1


def test_leading_descendant_query_unfolds_from_the_root(protein_system):
    plan = plan_for(protein_system, "//superfamily")
    descriptions = [branch.selections[0].description for branch in plan.branches]
    assert descriptions == [
        "/ProteinDatabase/ProteinEntry/protein/classification/superfamily"
    ]


def test_branch_joins_carry_exact_level_gaps(protein_system):
    plan = plan_for(protein_system, '/ProteinDatabase/ProteinEntry[protein//superfamily]/reference')
    branch = plan.branches[0]
    gaps = {(j.ancestor, j.descendant): j.level_gap for j in branch.joins}
    # superfamily sits 3 levels below ProteinEntry along the unfolded path.
    assert gaps[("T1", "T2")] == 3
    assert gaps[("T1", "T3")] == 1


def test_example_query_produces_simple_path_subqueries(protein_system):
    plan = plan_for(protein_system, EXAMPLE_QUERY)
    assert len(plan.branches) >= 1
    branch = plan.branches[0]
    descriptions = {s.description for s in branch.selections}
    # Example 4.2's unfolded Q'''2 and Q'''3.
    assert "/ProteinDatabase/ProteinEntry/protein/classification/superfamily" in descriptions
    assert "/ProteinDatabase/ProteinEntry/reference/refinfo/authors/author" in descriptions
    # One D-join per branch edge (5 for Figure 3's two branching points);
    # the interior descendant steps were unfolded away.
    assert plan.metrics().d_joins == 5


def test_recursive_schema_unfolds_to_the_instance_depth(auction_document):
    from repro.system import BLAS

    system = BLAS.from_document(auction_document)
    plan = system.translate("//category/description//text", "unfold").plan
    # The recursive parlist/listitem nesting yields one union branch per
    # unfolding depth permitted by the observed document depth.
    assert len(plan.branches) > 1
    lengths = {len(branch.selections[0].description.split("/")) for branch in plan.branches}
    assert len(lengths) > 1


def test_schema_impossible_query_is_statically_empty(protein_system):
    plan = plan_for(protein_system, "/ProteinDatabase/author")
    assert plan.is_empty
    assert plan.branches == []


def test_wildcard_child_steps_expand_against_the_schema(protein_system):
    plan = plan_for(protein_system, "/ProteinDatabase/ProteinEntry/protein/*")
    descriptions = sorted(branch.selections[0].description for branch in plan.branches)
    assert "/ProteinDatabase/ProteinEntry/protein/classification" in descriptions
    assert "/ProteinDatabase/ProteinEntry/protein/name" in descriptions


def test_wildcard_descendant_steps_are_rejected(protein_system):
    with pytest.raises(UnsupportedQueryError):
        plan_for(protein_system, "/ProteinDatabase//*")


def test_branch_limit_guard():
    graph = SchemaGraph()
    graph.add_root("a")
    graph.add_edge("a", "a")
    graph.observe_depth(12)
    from repro.core.plabel import PLabelScheme

    scheme = PLabelScheme(["a"], height=12)
    tree = build_query_tree(parse_xpath("//a//a//a"))
    with pytest.raises(SchemaError):
        translate_unfold(tree, scheme, graph, branch_limit=5)


def test_results_match_pushup_on_every_sample_query(protein_system):
    queries = [
        EXAMPLE_QUERY,
        "/ProteinDatabase/ProteinEntry//author",
        '//refinfo[year = "2001"]/title',
        "//superfamily",
    ]
    for text in queries:
        pushup_result = protein_system.query(text, translator="pushup").starts
        unfold_result = protein_system.query(text, translator="unfold").starts
        assert pushup_result == unfold_result, text
