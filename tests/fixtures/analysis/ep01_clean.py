"""EP01 fixture: the compliant twin of ``ep01_bad.py``.

Errors bound for the public surface are ``ReproError`` subclasses (the
CLI maps them to one-line ``error: …`` output); builtin protocol
exceptions remain legitimate inside the dunder methods that define the
protocol, and bare re-raises pass through untouched.
"""

from repro.exceptions import DatasetError, PlanError


class Cacheish:
    """Miniature of the plan cache's constructor guard."""

    def __init__(self, capacity):
        if capacity < 1:
            raise PlanError("capacity must be at least 1")
        self.capacity = capacity

    def __getitem__(self, key):
        # Protocol exemption: dunders may speak the container protocol.
        raise IndexError(key)


def build_dataset(name, registry):
    if name not in registry:
        raise DatasetError(f"unknown dataset {name!r}")
    try:
        return registry[name]()
    except Exception:
        raise
