"""RL01 fixture: writes a guarded field without holding its lock.

Regression note: mirrors the bug fixed in ``BLASCollection.save`` — the
tail of the method rebound ``self._partition_paths`` and ``self._persist``
*outside* ``self._mutation_lock``, so a concurrent ``add_xml`` fanning out
over the old store could observe a half-switched binding.  The fix wrapped
the save body in the mutation lock; this fixture preserves the broken
shape so the checker is pinned to keep catching it.
"""

import threading


class Collectionish:
    """Miniature of the collection's store-binding state."""

    def __init__(self):
        self._lock = threading.RLock()
        self._paths = {}  #: guarded-by: _lock
        self._store = None  #: guarded-by: _lock

    def save(self, store, paths):
        """Broken: commits the new binding without the lock."""
        self._paths = paths
        self._store = store

    def mutate_entry(self, key, value):
        """Broken: subscript store into a guarded mapping, unlocked."""
        self._paths[key] = value

    def read_store(self):
        """Broken: unlocked read of a read/write-guarded field."""
        return self._store
