"""PL01 fixture: the compliant twin of ``pl01_bad.py``.

Materialization happens inside ``with store.pinned(doc_id)`` — the pin
holds the partition resident for the whole scan — and column bytes are
copied out before the mapping closes instead of escaping as a view.
"""


def fan_out_scan(store, doc_id, query):
    """Pins the partition for the duration of the scan."""
    with store.pinned(doc_id) as catalog:
        return query.run(catalog)


def peek_column(store, doc_id):
    """Copies the bytes out; no view survives the close."""
    mapping = store.open_mapping(doc_id)
    try:
        return bytes(mapping.buffer)
    finally:
        mapping.close()
