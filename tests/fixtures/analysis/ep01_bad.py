"""EP01 fixture: builtin exceptions escaping toward the public surface.

Regression note: mirrors the ``PlanCache(capacity=0)`` guard, which
raised a bare ``ValueError`` — the CLI's ``except ReproError`` boundary
let it through as a traceback instead of a one-line ``error: …``.  The
fix re-parented it onto ``PlanError``; the dataset builders and the
statistics merge had the same shape (now ``DatasetError`` /
``StorageError``).
"""


class Cacheish:
    """Miniature of the plan cache's constructor guard."""

    def __init__(self, capacity):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity


def build_dataset(name, registry):
    if name not in registry:
        raise RuntimeError(f"unknown dataset {name!r}")
    return registry[name]()
