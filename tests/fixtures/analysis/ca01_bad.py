"""CA01 fixture: re-implements packed-column scan accounting by hand.

Regression note: before the scan path was unified behind
``SlotRangeAccess`` / ``access_rows`` / ``packed_selection``, two engines
each did their own bisect-based slot math and their element/page counts
drifted apart on the same query.  This fixture is that outlawed second
implementation: a bisect over the packed column plus hand-maintained
counters — exactly what the checker must keep unshippable outside
``storage/``.
"""

import bisect
from bisect import bisect_left


def rogue_scan(stats, column, low, high):
    """Hand-rolled slot math with hand-rolled accounting."""
    start = bisect.bisect_left(column, low)
    stop = bisect_left(column, high)
    stats.elements_read += stop - start
    stats.pages_read = stats.pages_read + 1
    stats.per_alias_elements.update({"rogue": stop - start})
    return range(start, stop)


def rogue_record(stats, table, tag):
    """record_scan with hand-computed counts, plus raw slot helpers."""
    slots = table.tag_slot_list(tag)
    stats.record_scan(tag, len(slots), len(slots) // 8)
    stats.record_index_lookup(tag)
    return slots
