"""CA01 fixture: the compliant twin of ``ca01_bad.py``.

Scans outside ``storage/`` go through the unified access path and forward
the access object's own ``.elements``/``.pages`` pair to ``record_scan``
— no local arithmetic to drift.  A ``record_index_lookup`` is fine in the
same function as such a forwarding call.
"""


def proper_scan(stats, table, tag, low, high):
    """The SlotRangeAccess forwarding idiom (the vector engine's shape)."""
    access = table.access_rows(tag, low, high)
    stats.record_scan(tag, access.elements, access.pages)
    stats.record_index_lookup(tag)
    return access.rows


def proper_selection(table, tag, value):
    """Value selections go through packed_selection, not raw slots."""
    return table.packed_selection(tag, value)
