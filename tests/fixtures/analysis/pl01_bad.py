"""PL01 fixture: partition materialization and buffer views done wrong.

Regression note: with the bounded partition cache (`cache_bytes=`) a
partition touched outside a ``pinned()`` scope can be evicted between the
materializing call and the scan over it; and a ``memoryview`` handed out
of a function that also closes the mapping reads freed pages.  Both
shapes below must stay unshippable in the fan-out/server layers.
"""


def fan_out_scan(store, doc_id, query):
    """Broken: materializes the catalog with no pin held."""
    catalog = store.catalog_for(doc_id)
    return query.run(catalog)


def peek_column(store, doc_id):
    """Broken: hands out a view over a mapping this function closes."""
    mapping = store.open_mapping(doc_id)
    try:
        return memoryview(mapping.buffer).cast("I")
    finally:
        mapping.close()
