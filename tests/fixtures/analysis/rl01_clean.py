"""RL01 fixture: the compliant twin of ``rl01_bad.py``.

Every touch of a guarded field happens under ``with self._lock`` (or in
``__init__``, which is allowlisted — the object is not yet shared), and a
callers-hold-the-lock helper is declared with ``#: holds:``.
"""

import threading


class Collectionish:
    """Miniature of the collection's store-binding state."""

    def __init__(self):
        self._lock = threading.RLock()
        self._paths = {}  #: guarded-by: _lock
        self._store = None  #: guarded-by: _lock

    def save(self, store, paths):
        """Commits the new binding under the mutation lock."""
        with self._lock:
            self._paths = paths
            self._store = store

    def mutate_entry(self, key, value):
        with self._lock:
            self._touch(key, value)

    def _touch(self, key, value):  #: holds: _lock
        self._paths[key] = value

    def read_store(self):
        with self._lock:
            return self._store
