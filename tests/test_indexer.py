"""Tests for the bi-labeling index generator (paper Figure 6)."""

from __future__ import annotations

import pytest

from repro.core.indexer import (
    BiLabelIndexer,
    NodeRecord,
    index_document,
    index_text,
    merge_indexes,
)
from repro.core.plabel import PLabelScheme
from repro.exceptions import LabelingError
from repro.xmlkit.parser import drive, iterparse, parse_string


def test_one_record_per_node(tiny_indexed, tiny_document):
    assert tiny_indexed.node_count == tiny_document.count_nodes()


def test_records_carry_both_labels_and_values(protein_indexed):
    by_tag = {}
    for record in protein_indexed.records:
        by_tag.setdefault(record.tag, []).append(record)
    year = by_tag["year"][0]
    assert year.data in ("2001", "1999")
    assert year.start < year.end
    assert year.level == 5
    scheme = protein_indexed.scheme
    assert scheme.decode_plabel(year.plabel) == [
        "ProteinDatabase", "ProteinEntry", "reference", "refinfo", "year",
    ]


def test_record_dlabel_property(tiny_indexed):
    record = tiny_indexed.records[0]
    assert record.dlabel.start == record.start
    assert record.dlabel.level == record.level


def test_plabels_match_source_paths(protein_indexed, protein_document):
    scheme = protein_indexed.scheme
    by_start = {record.start: record for record in protein_indexed.records}
    # Walk the tree and recompute each node's plabel from its path.
    from repro.core.dlabel import dlabels_for_document

    labels = dlabels_for_document(protein_document)
    for node in protein_document.iter():
        record = by_start[labels[id(node)].start]
        assert record.plabel == scheme.node_plabel(node.path_tags()), node.source_path()


def test_attribute_nodes_are_indexed(tiny_indexed):
    attribute_records = [record for record in tiny_indexed.records if record.tag == "@id"]
    assert len(attribute_records) == 2
    assert {record.data for record in attribute_records} == {"1", "2"}


def test_sp_and_sd_orderings(tiny_indexed):
    sp = tiny_indexed.records_by_sp_order()
    assert all(
        earlier.sort_key_sp() <= later.sort_key_sp() for earlier, later in zip(sp, sp[1:])
    )
    sd = tiny_indexed.records_by_sd_order()
    assert all(
        earlier.sort_key_sd() <= later.sort_key_sd() for earlier, later in zip(sd, sd[1:])
    )


def test_records_for_tag_in_document_order(tiny_indexed):
    c_records = tiny_indexed.records_for_tag("c")
    assert len(c_records) == 3
    assert [record.start for record in c_records] == sorted(record.start for record in c_records)


def test_summary_reports_figure12_columns(protein_indexed):
    summary = protein_indexed.summary()
    assert set(summary) == {"name", "size_bytes", "nodes", "tags", "depth"}
    assert summary["nodes"] == protein_indexed.node_count
    assert summary["depth"] == 6


def test_index_text_builds_schema_graph(protein_indexed):
    assert protein_indexed.schema is not None
    assert protein_indexed.schema.has_edge("refinfo", "authors")


def test_index_with_supplied_scheme_skips_discovery():
    text = "<a><b>x</b></a>"
    scheme = PLabelScheme(["a", "b"], height=4)
    indexed = index_text(text, scheme=scheme, extract_schema_graph=False)
    assert indexed.scheme is scheme
    assert indexed.schema is None


def test_indexer_rejects_tags_outside_the_scheme():
    scheme = PLabelScheme(["a"], height=3)
    indexer = BiLabelIndexer(scheme)
    with pytest.raises(LabelingError):
        drive(iterparse("<a><b/></a>"), indexer)


def test_index_empty_document_raises():
    with pytest.raises(Exception):
        index_text("   ")


def test_index_document_matches_index_text(protein_xml):
    from_text = index_text(protein_xml, name="t")
    from_document = index_document(parse_string(protein_xml), name="t")
    assert from_text.node_count == from_document.node_count
    text_tags = sorted(record.tag for record in from_text.records)
    document_tags = sorted(record.tag for record in from_document.records)
    assert text_tags == document_tags


def test_merge_indexes_requires_matching_schemes():
    scheme = PLabelScheme(["a", "b"], height=4)
    first = index_text("<a><b>1</b></a>", scheme=scheme, doc_id=0, extract_schema_graph=False)
    second = index_text("<a><b>2</b></a>", scheme=scheme, doc_id=1, extract_schema_graph=False)
    merged = merge_indexes([first, second])
    assert merged.node_count == 4
    assert {record.doc_id for record in merged.records} == {0, 1}
    other = index_text("<c/>", extract_schema_graph=False)
    with pytest.raises(LabelingError):
        merge_indexes([first, other])


def test_merge_indexes_rejects_empty_list():
    with pytest.raises(LabelingError):
        merge_indexes([])


def test_doc_id_is_recorded():
    indexed = index_text("<a><b/></a>", doc_id=3, extract_schema_graph=False)
    assert all(record.doc_id == 3 for record in indexed.records)


def test_node_record_is_immutable(tiny_indexed):
    record = tiny_indexed.records[0]
    with pytest.raises(AttributeError):
        record.start = 99
