"""Property-based tests for the B+ tree (hypothesis)."""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.storage.btree import BPlusTree

keys_strategy = st.lists(st.integers(min_value=-1000, max_value=1000), max_size=300)


@given(keys=keys_strategy, order=st.integers(min_value=3, max_value=16))
@settings(max_examples=100, deadline=None)
def test_items_are_sorted_and_complete(keys, order):
    tree = BPlusTree(order=order)
    for position, key in enumerate(keys):
        tree.insert(key, position)
    stored_keys = [key for key, _ in tree.items()]
    assert stored_keys == sorted(keys)
    assert len(tree) == len(keys)
    tree.check_invariants()


@given(keys=keys_strategy)
@settings(max_examples=100, deadline=None)
def test_point_lookup_returns_every_inserted_value(keys):
    tree = BPlusTree(order=6)
    expected = Counter()
    for position, key in enumerate(keys):
        tree.insert(key, position)
        expected[key] += 1
    for key, count in expected.items():
        assert len(tree.get(key)) == count
    missing = 2000
    assert tree.get(missing) == []


@given(
    keys=keys_strategy,
    low=st.integers(min_value=-1000, max_value=1000),
    high=st.integers(min_value=-1000, max_value=1000),
)
@settings(max_examples=100, deadline=None)
def test_range_scan_equals_filtered_sort(keys, low, high):
    tree = BPlusTree(order=5)
    for key in keys:
        tree.insert(key, key)
    scanned = [key for key, _ in tree.range(low, high)]
    expected = sorted(key for key in keys if low <= key <= high)
    assert scanned == expected
