"""Tests for the SQLite (RDBMS) backend."""

from __future__ import annotations

import pytest

from repro.core.plabel import encode_plabel_text
from repro.exceptions import StorageError
from repro.storage.sqlite_backend import SqliteBackend


@pytest.fixture()
def backend(protein_indexed):
    instance = SqliteBackend.from_indexed_document(protein_indexed)
    yield instance
    instance.close()


def test_both_relations_are_loaded(backend, protein_indexed):
    assert backend.count("sp") == protein_indexed.node_count
    assert backend.count("sd") == protein_indexed.node_count


def test_unknown_table_is_rejected(backend):
    with pytest.raises(StorageError):
        backend.count("users")


def test_empty_sql_is_rejected(backend):
    with pytest.raises(StorageError):
        backend.execute("  ")


def test_tag_lookup_via_sd(backend):
    rows = backend.execute("SELECT data FROM sd WHERE tag = 'author' ORDER BY start_pos")
    assert len(rows) == 4
    assert rows[0][0] == "Evans, M.J."


def test_plabel_equality_via_sp(backend, protein_indexed):
    scheme = protein_indexed.scheme
    plabel = scheme.node_plabel(["ProteinDatabase", "ProteinEntry", "protein", "name"])
    rows = backend.execute(
        "SELECT data FROM sp WHERE plabel = ? ORDER BY start_pos",
        [encode_plabel_text(plabel)],
    )
    assert [row[0] for row in rows] == [
        "cytochrome c [validated]", "hemoglobin beta", "cytochrome c2",
    ]


def test_plabel_range_via_sp(backend, protein_indexed):
    scheme = protein_indexed.scheme
    interval = scheme.suffix_path_interval(["refinfo", "year"])
    rows = backend.execute(
        "SELECT data FROM sp WHERE plabel >= ? AND plabel <= ?",
        [encode_plabel_text(interval.p1), encode_plabel_text(interval.p2)],
    )
    assert sorted(row[0] for row in rows) == ["1999", "2001", "2001"]


def test_d_join_in_sql(backend):
    # //ProteinEntry//author via a containment join on D-labels.
    rows = backend.execute(
        """
        SELECT COUNT(*) FROM sd entry, sd author
        WHERE entry.tag = 'ProteinEntry' AND author.tag = 'author'
          AND entry.start_pos < author.start_pos AND entry.end_pos > author.end_pos
        """
    )
    assert rows[0][0] == 4


def test_plabel_text_encoding_preserves_order(backend):
    rows = backend.execute("SELECT plabel FROM sp ORDER BY plabel")
    decoded = [int(row[0]) for row in rows]
    assert decoded == sorted(decoded)


def test_explain_returns_plan_lines(backend):
    lines = backend.explain("SELECT * FROM sp WHERE plabel = '0'")
    assert lines
    assert any("sp" in line for line in lines)


def test_context_manager_closes_the_connection(protein_indexed):
    with SqliteBackend.from_indexed_document(protein_indexed) as backend:
        assert backend.count("sp") > 0
    with pytest.raises(Exception):
        backend.execute("SELECT 1")


def test_indexes_exist_for_query_attributes(backend):
    rows = backend.execute("SELECT name FROM sqlite_master WHERE type = 'index'")
    names = {row[0] for row in rows}
    assert {"sp_start", "sp_data", "sd_start", "sd_data"}.issubset(names)
