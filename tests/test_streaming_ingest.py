"""Streaming ingestion: chunked tokenizer, file event parser, file indexer.

The invariant throughout: chunked/streaming input produces exactly the same
tokens, events, records and schema as whole-text processing, for any chunk
size — including pathological one-character chunks that split every token.
"""

from __future__ import annotations

import pytest

from repro.core.indexer import index_file, index_text
from repro.datasets import build_dataset
from repro.system import BLAS
from repro.xmlkit.parser import iterparse, iterparse_file, iterparse_tokens, parse_document
from repro.xmlkit.tokenizer import tokenize, tokenize_chunks
from repro.xmlkit.writer import document_to_string
from tests.conftest import PROTEIN_SAMPLE

TRICKY = (
    '<?xml version="1.0"?><!DOCTYPE r [ <!ELEMENT r ANY> ]>'
    '<r a="x>y"><!-- gt > inside --><![CDATA[cd]]>t&amp;u<e/>'
    "<deep><deeper>text</deeper></deep></r>"
)


def _chunks(text: str, size: int):
    return [text[i : i + size] for i in range(0, len(text), size)]


@pytest.mark.parametrize("size", [1, 2, 7, 64, 4096])
def test_chunked_tokenizer_matches_whole_text(size):
    expected = list(tokenize(TRICKY))
    assert list(tokenize_chunks(_chunks(TRICKY, size))) == expected


@pytest.mark.parametrize("dataset", ["shakespeare", "protein", "auction"])
def test_chunked_tokenizer_on_datasets(dataset):
    text = document_to_string(build_dataset(dataset))
    expected = list(tokenize(text))
    for size in (13, 1024):
        assert list(tokenize_chunks(_chunks(text, size))) == expected


def test_chunked_errors_report_document_absolute_offsets():
    from repro.exceptions import XMLSyntaxError

    bad = "<root>" + "x" * 50 + "<broken"
    with pytest.raises(XMLSyntaxError) as whole:
        list(tokenize(bad))
    with pytest.raises(XMLSyntaxError) as chunked:
        list(tokenize_chunks(_chunks(bad, 7)))
    assert chunked.value.position == whole.value.position


def test_huge_text_node_tokenizes_in_linear_passes():
    """A single token spanning many chunks must not be rescanned from its
    start on every chunk (the hint keeps the scan linear)."""
    text = "<r>" + "y" * 200_000 + "</r>"
    expected = list(tokenize(text))
    assert list(tokenize_chunks(_chunks(text, 1000))) == expected


def test_chunked_events_match_whole_text_events():
    expected = list(iterparse(PROTEIN_SAMPLE))
    chunked = list(iterparse_tokens(tokenize_chunks(_chunks(PROTEIN_SAMPLE, 5))))
    assert chunked == expected


def test_iterparse_file_matches_iterparse(tmp_path):
    path = tmp_path / "sample.xml"
    path.write_text(PROTEIN_SAMPLE, encoding="utf-8")
    assert list(iterparse_file(str(path), chunk_size=11)) == list(iterparse(PROTEIN_SAMPLE))


def test_index_file_matches_index_text(tmp_path):
    text = document_to_string(build_dataset("protein"))
    path = tmp_path / "protein.xml"
    path.write_text(text, encoding="utf-8")
    from_text = index_text(text, name="protein")
    from_file = index_file(str(path), name="protein", chunk_size=333)
    assert from_file.records == from_text.records
    assert from_file.source_size_bytes == from_text.source_size_bytes
    assert from_file.schema is not None and from_text.schema is not None
    assert from_file.schema.tags == from_text.schema.tags
    assert from_file.schema.roots == from_text.schema.roots
    assert from_file.schema.max_depth == from_text.schema.max_depth


def test_index_file_stamps_doc_ids(tmp_path):
    path = tmp_path / "sample.xml"
    path.write_text(PROTEIN_SAMPLE, encoding="utf-8")
    indexed = index_file(str(path), doc_id=7)
    assert {record.doc_id for record in indexed.records} == {7}


def test_streaming_schema_matches_tree_extraction():
    from repro.xmlkit.parser import parse_string
    from repro.xmlkit.schema import extract_schema

    streamed = index_text(PROTEIN_SAMPLE).schema
    from_tree = extract_schema(parse_string(PROTEIN_SAMPLE))
    assert streamed.tags == from_tree.tags
    assert streamed.roots == from_tree.roots
    assert streamed.max_depth == from_tree.max_depth
    for tag in from_tree.tags:
        assert streamed.children(tag) == from_tree.children(tag)


def test_from_file_routes_through_the_streaming_indexer(tmp_path, monkeypatch):
    """``BLAS.from_file`` must not slurp the file with ``read()``."""
    path = tmp_path / "sample.xml"
    path.write_text(PROTEIN_SAMPLE, encoding="utf-8")

    import repro.xmlkit.parser as parser_module

    real = parser_module.iter_file_chunks
    max_request = []

    def spy(path_arg, chunk_size=parser_module.DEFAULT_CHUNK_SIZE):
        max_request.append(chunk_size)
        return real(path_arg, chunk_size)

    monkeypatch.setattr(parser_module, "iter_file_chunks", spy)
    system = BLAS.from_file(str(path))
    assert max_request, "from_file did not use the chunked file reader"
    assert all(size <= parser_module.DEFAULT_CHUNK_SIZE for size in max_request)
    assert system.query("//author").count == 4


def test_parse_document_still_builds_the_same_tree(tmp_path):
    from repro.xmlkit.parser import parse_string

    path = tmp_path / "sample.xml"
    path.write_text(PROTEIN_SAMPLE, encoding="utf-8")
    streamed = parse_document(str(path))
    in_memory = parse_string(PROTEIN_SAMPLE)
    assert streamed.count_nodes() == in_memory.count_nodes()
    assert streamed.distinct_tags() == in_memory.distinct_tags()
