"""Snapshot-isolation property suite.

A reader admitted at manifest version N must get byte-identical answers
and visited-element counters no matter how many commits (N+1, N+2, …) a
writer lands concurrently — across serial and parallel fan-out, bounded
partition caches and sharded stores.  The suite also pins the storage
substrate beneath that guarantee: removal of a pinned partition defers
teardown and file deletion until the last pin drops.
"""

import os
import threading

import pytest

from repro.collection import BLASCollection
from repro.core.indexer import index_text
from repro.exceptions import CollectionError, StorageError
from repro.storage.table import PartitionedCatalog

QUERY = "//book/title"


def _doc(i: int) -> str:
    return (
        f"<lib><book><title>t{i}</title></book>"
        f"<book><title>u{i}</title></book></lib>"
    )


EXTRA = "<lib><book><title>extra</title></book></lib>"


def _build_store(tmp_path, shards=None, cache_bytes=None, docs=3):
    store = str(tmp_path / "store")
    collection = BLASCollection()
    for i in range(docs):
        collection.add_xml(_doc(i), name=f"doc{i}")
    collection.save(store, shards=shards)
    return BLASCollection.open(store, cache_bytes=cache_bytes), store


def _key(result):
    """Byte-identity key: records, total count and the visited counter."""
    return (
        [(r.doc_id, r.tag, r.start, r.level, r.data) for r in result.records],
        result.count,
        result.stats.elements_read,
    )


def _store_files(store):
    found = set()
    for root, _, names in os.walk(store):
        for name in names:
            found.add(os.path.join(root, name))
    return found


# -- the core isolation property ----------------------------------------------------


@pytest.mark.parametrize("parallel", [False, True], ids=["serial", "parallel"])
@pytest.mark.parametrize("shards", [None, 2], ids=["plain", "sharded"])
@pytest.mark.parametrize(
    "cache_bytes", [None, 1], ids=["unbounded", "bounded-cache"]
)
def test_snapshot_is_frozen_while_writer_commits(
    tmp_path, parallel, shards, cache_bytes
):
    collection, _ = _build_store(tmp_path, shards=shards, cache_bytes=cache_bytes)
    with collection.snapshot() as snapshot:
        admitted = snapshot.version
        baseline = _key(snapshot.query(QUERY, parallel=parallel))
        # Writer commits N+1 (add) and N+2 (remove) under the reader.
        collection.add_xml(EXTRA, name="extra")
        collection.remove("doc0")
        assert collection.version == admitted + 2
        # The pinned reader neither sees the new document nor loses the
        # removed one — and its counters do not move either.
        assert _key(snapshot.query(QUERY, parallel=parallel)) == baseline
        assert snapshot.version == admitted
    # The live collection sees the new membership.
    live = collection.query(QUERY, parallel=parallel)
    data = [record.data for record in live.records]
    assert "extra" in data and "t0" not in data


@pytest.mark.parametrize("parallel", [False, True], ids=["serial", "parallel"])
def test_concurrent_readers_verify_against_serial_library_runs(tmp_path, parallel):
    """Every concurrent snapshot answer equals the single-threaded answer
    the writer recorded for that exact version."""
    collection, _ = _build_store(tmp_path)
    expected = {}
    expected_lock = threading.Lock()
    with expected_lock:
        expected[collection.version] = _key(collection.query(QUERY, parallel=False))
    stop = threading.Event()
    failures = []

    def writer():
        for commit in range(8):
            if commit % 2 == 0:
                collection.add_xml(EXTRA, name=f"extra{commit}")
            else:
                collection.remove(f"extra{commit - 1}")
            # The writer is the only mutator, so the library answer it
            # records right after a commit is the single-threaded truth
            # for that version.
            with expected_lock:
                expected[collection.version] = _key(
                    collection.query(QUERY, parallel=False)
                )
        stop.set()

    def reader():
        try:
            while not stop.is_set():
                with collection.snapshot() as snapshot:
                    version = snapshot.version
                    answer = _key(snapshot.query(QUERY, parallel=parallel))
                for _ in range(200):
                    with expected_lock:
                        want = expected.get(version)
                    if want is not None:
                        break
                if want != answer:
                    failures.append((version, want, answer))
        except Exception as error:  # pragma: no cover - surfaced below
            failures.append(error)

    threads = [threading.Thread(target=reader) for _ in range(3)]
    threads.append(threading.Thread(target=writer))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not failures, failures[:3]
    assert stop.is_set(), "writer did not finish its commits"


# -- deferred file deletion ---------------------------------------------------------


def test_remove_defers_file_deletion_until_last_pin_drops(tmp_path):
    collection, store = _build_store(tmp_path)
    first = collection.snapshot()
    second = collection.snapshot()
    before = _store_files(store)
    collection.remove("doc0")
    assert collection.store.cache_stats()["deferred_partitions"] == 1
    # The manifest swap committed, but the pinned partition file survives.
    assert _store_files(store) == before
    first.close()
    assert _store_files(store) == before  # second snapshot still pins it
    second.close()
    deleted = before - _store_files(store)
    assert len(deleted) == 1 and "doc-00000" in deleted.pop()
    assert collection.store.cache_stats()["deferred_partitions"] == 0


def test_snapshot_still_streams_a_lazily_opened_partition_removed_under_it(tmp_path):
    """A partition that was never materialized must stay loadable after a
    concurrent remove: the deferred entry keeps its loader and its file."""
    collection, _ = _build_store(tmp_path)
    with collection.snapshot() as snapshot:
        assert not collection.store.is_loaded(0)
        collection.remove("doc0")
        result = snapshot.query(QUERY, parallel=False)
        assert [r.data for r in result.records[:2]] == ["t0", "u0"]


def test_closed_snapshot_rejects_queries(tmp_path):
    collection, _ = _build_store(tmp_path)
    snapshot = collection.snapshot()
    snapshot.close()
    snapshot.close()  # idempotent
    with pytest.raises(CollectionError, match="closed"):
        snapshot.query(QUERY)


# -- the storage substrate ----------------------------------------------------------


def test_partitioned_catalog_defers_removal_of_pinned_partitions():
    catalog = PartitionedCatalog()
    indexed = index_text(_doc(0), doc_id=0)
    catalog.add_partition(indexed, 0)
    released = []
    catalog.pin(0)
    ticket = catalog.remove_partition(0)
    ticket.on_release(lambda: released.append("a"))
    assert ticket.deferred
    assert released == []
    # Membership is gone for new callers, but the pin holder still reads.
    assert catalog.doc_ids() == []
    assert catalog.catalog_for(0).fingerprint()
    catalog.unpin(0)
    assert not ticket.deferred
    assert released == ["a"]
    # Callbacks registered after release run immediately.
    ticket.on_release(lambda: released.append("b"))
    assert released == ["a", "b"]
    with pytest.raises(StorageError):
        catalog.catalog_for(0)


def test_partitioned_catalog_removal_without_pins_releases_immediately():
    catalog = PartitionedCatalog()
    catalog.add_partition(index_text(_doc(0), doc_id=0), 0)
    ticket = catalog.remove_partition(0)
    assert not ticket.deferred
    ran = []
    ticket.on_release(lambda: ran.append(True))
    assert ran == [True]


# -- version plumbing ---------------------------------------------------------------


def test_version_counts_commits_and_survives_reopen(tmp_path):
    collection, store = _build_store(tmp_path)
    opened_at = collection.version
    collection.add_xml(EXTRA, name="extra")
    collection.remove("extra")
    assert collection.version == opened_at + 2
    assert BLASCollection.open(store).version == opened_at + 2


def test_version_survives_reopen_on_sharded_stores(tmp_path):
    collection, store = _build_store(tmp_path, shards=2)
    collection.add_xml(EXTRA, name="extra")
    collection.remove("extra")
    assert BLASCollection.open(store).version == collection.version


def test_failed_persist_rolls_the_version_back(tmp_path, monkeypatch):
    from repro.storage.persist import CollectionStore, PersistError

    collection, _ = _build_store(tmp_path)
    before = collection.version

    def fail(self, *args, **kwargs):
        raise PersistError("injected failure")

    monkeypatch.setattr(CollectionStore, "write_partition", fail)
    with pytest.raises(PersistError):
        collection.add_xml(EXTRA, name="extra")
    assert collection.version == before
    monkeypatch.undo()
    collection.add_xml(EXTRA, name="extra")
    assert collection.version == before + 1


def test_plan_cache_keeps_per_version_counters(tmp_path):
    collection, _ = _build_store(tmp_path)
    with collection.snapshot() as snapshot:
        first = snapshot.version
        snapshot.query(QUERY)  # miss + plan
        snapshot.query(QUERY)  # hit
    collection.add_xml(EXTRA, name="extra")
    with collection.snapshot() as snapshot:
        second = snapshot.version
        snapshot.query(QUERY)
    versions = collection.plan_cache.stats()["versions"]
    assert versions[first]["hits"] >= 1 and versions[first]["misses"] >= 1
    assert versions[first]["plans"] >= 1
    assert versions[second]["misses"] >= 1
    # Library-path queries stay unversioned: their keys and counters are
    # untouched by the snapshot machinery.
    collection.query(QUERY)
    assert set(collection.plan_cache.stats()["versions"]) == {first, second}


def test_snapshot_explain_names_its_version(tmp_path):
    collection, _ = _build_store(tmp_path)
    with collection.snapshot() as snapshot:
        text = snapshot.explain(QUERY)
    assert text.startswith("SNAPSHOT EXPLAIN")
    assert f"version={snapshot.version}" in text


def test_empty_snapshot_answers_empty(tmp_path):
    collection, _ = _build_store(tmp_path, docs=1)
    collection.remove("doc0")
    with collection.snapshot() as snapshot:
        result = snapshot.query(QUERY)
    assert result.count == 0 and result.records == []
