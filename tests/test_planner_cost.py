"""Unit tests for the planner's statistics and cost model."""

from __future__ import annotations

import pytest

from repro.planner.cost import Cost, CostModel, preference_rank, TRANSLATOR_PREFERENCE
from repro.storage.stats import TableStatistics
from repro.translate.plan import (
    ConjunctivePlan,
    JoinSpec,
    SelectionKind,
    SelectionSpec,
)


@pytest.fixture()
def model(protein_system):
    return CostModel(protein_system.catalog.statistics())


@pytest.fixture()
def table_stats(protein_indexed):
    return TableStatistics(protein_indexed.records)


# -- TableStatistics: exact histograms --------------------------------------------


def test_tag_counts_are_exact(table_stats, protein_indexed):
    for tag in ("author", "protein", "name", "year"):
        expected = sum(1 for r in protein_indexed.records if r.tag == tag)
        assert table_stats.tag_count(tag) == expected
    assert table_stats.tag_count(None) == len(protein_indexed.records)
    assert table_stats.tag_count("*") == len(protein_indexed.records)
    assert table_stats.tag_count("no-such-tag") == 0


def test_plabel_range_counts_are_exact(table_stats, protein_indexed):
    plabels = sorted(r.plabel for r in protein_indexed.records)
    lows_highs = [
        (plabels[0], plabels[-1]),
        (plabels[0], plabels[0]),
        (plabels[len(plabels) // 2], plabels[-1]),
        (plabels[-1] + 1, plabels[-1] + 10),  # empty range above the domain
        (5, 4),  # inverted range
    ]
    for low, high in lows_highs:
        expected = sum(1 for p in plabels if low <= p <= high)
        assert table_stats.plabel_range_count(low, high) == expected, (low, high)


def test_level_selectivity_is_exact(table_stats, protein_indexed):
    records = protein_indexed.records
    for level in {r.level for r in records}:
        expected = sum(1 for r in records if r.level == level) / len(records)
        assert table_stats.level_eq_selectivity(level) == pytest.approx(expected)
    assert table_stats.level_eq_selectivity(999) == 0.0


def test_data_eq_selectivity_is_a_fraction(table_stats):
    selectivity = table_stats.data_eq_selectivity()
    assert 0.0 < selectivity <= 1.0


# -- CostModel: selection costs match the real scans -------------------------------


@pytest.mark.parametrize("translator", ["dlabel", "split", "pushup", "unfold"])
def test_selection_cardinality_matches_actual_scan(protein_system, model, translator):
    """The element cost of every selection is the true scan size."""
    from repro.storage.stats import AccessStatistics

    outcome = protein_system.translate(
        "/ProteinDatabase/ProteinEntry//author", translator
    )
    for branch in outcome.plan.non_empty_branches():
        for selection in branch.selections:
            stats = AccessStatistics()
            table = protein_system.catalog.table_for(selection.source)
            if selection.kind is SelectionKind.PLABEL_EQ:
                table.select_plabel_eq(selection.plabel_low, stats=stats)
            elif selection.kind is SelectionKind.PLABEL_RANGE:
                table.select_plabel_range(
                    selection.plabel_low, selection.plabel_high, stats=stats
                )
            else:
                table.select_tag(selection.tag, stats=stats)
            assert model.selection_cardinality(selection) == stats.elements_read


def test_empty_selection_costs_nothing(model):
    empty = SelectionSpec(alias="T1", kind=SelectionKind.EMPTY)
    assert model.selection_cardinality(empty) == 0
    assert model.selection_output(empty) == 0.0


def test_residuals_shrink_output_but_not_cardinality(model):
    plain = SelectionSpec(alias="T1", kind=SelectionKind.TAG, source="sd", tag="author")
    filtered = SelectionSpec(
        alias="T1", kind=SelectionKind.TAG, source="sd", tag="author",
        data_eq="Evans, M.J.",
    )
    assert model.selection_cardinality(plain) == model.selection_cardinality(filtered)
    assert model.selection_output(filtered) < model.selection_output(plain)


# -- join ordering ----------------------------------------------------------------


def _branch_with_three_aliases():
    selections = [
        SelectionSpec(alias="A", kind=SelectionKind.TAG, source="sd", tag="ProteinEntry"),
        SelectionSpec(alias="B", kind=SelectionKind.TAG, source="sd", tag="author"),
        SelectionSpec(
            alias="C", kind=SelectionKind.TAG, source="sd", tag="year", data_eq="2001"
        ),
    ]
    joins = [JoinSpec(ancestor="A", descendant="B"), JoinSpec(ancestor="A", descendant="C")]
    return ConjunctivePlan(selections=selections, joins=joins, return_alias="B")


def test_join_order_is_connected(model):
    branch = _branch_with_three_aliases()
    shape = model.order_joins(branch)
    assert len(shape.join_order) == len(branch.joins)
    bound = set()
    for join in shape.join_order:
        if bound:
            assert join.ancestor in bound or join.descendant in bound
        bound.update((join.ancestor, join.descendant))


def test_join_order_prefers_the_filtered_side_first(model):
    """The residual-filtered (tiny) selection joins before the big one."""
    branch = _branch_with_three_aliases()
    shape = model.order_joins(branch)
    first = shape.join_order[0]
    assert {first.ancestor, first.descendant} == {"A", "C"}


def test_statically_empty_branch_is_detected(model):
    branch = ConjunctivePlan(
        selections=[
            SelectionSpec(alias="A", kind=SelectionKind.TAG, source="sd", tag="author"),
            SelectionSpec(alias="B", kind=SelectionKind.TAG, source="sd", tag="ghost-tag"),
        ],
        joins=[JoinSpec(ancestor="A", descendant="B")],
        return_alias="B",
    )
    shape = model.order_joins(branch)
    assert shape.statically_empty
    assert model.branch_cost(shape, "memory").elements == 0
    assert model.branch_cost(shape, "twig").elements == 0


def test_plan_cost_elements_dominate_cpu():
    assert Cost(1, 1e9).key() < Cost(2, 0.0).key()
    assert Cost(1, 2.0).key() > Cost(1, 1.0).key()


def test_preference_rank_falls_back_for_unknown_names():
    assert preference_rank("pushup", TRANSLATOR_PREFERENCE) == 0
    assert preference_rank("mystery", TRANSLATOR_PREFERENCE) == len(TRANSLATOR_PREFERENCE)
