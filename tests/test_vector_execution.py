"""The vectorized engine cannot drift from the row engines.

Property tests for ``engine="vector"``: on every bundled dataset × workload
query it must return byte-identical records, values, document order *and*
access counters to the row engine whose shape it mirrors — explicitly
(faithful mode mirrors the memory engine) and through the planner
(optimized mode mirrors whichever row strategy the cost model priced
cheaper), serially and under parallel collection fan-out, and across
cached-plan re-execution.  Plus unit tests for the slot kernels'
empty/singleton/duplicate-plabel edge cases and the ``limit=`` /
``count_only=`` materialization bounds.
"""

from __future__ import annotations

import pytest

from repro.core.indexer import NodeRecord
from repro.collection import BLASCollection
from repro.datasets import build_dataset, queries_for_dataset
from repro.engine.structural_join import structural_join
from repro.engine.vector import structural_join_slots
from repro.planner.physical import lower_plan
from repro.planner.cost import CostModel
from repro.storage.columns import ColumnarRecords, ColumnSlice
from repro.storage.stats import AccessStatistics
from repro.system import BLAS, TRANSLATOR_NAMES
from repro.xmlkit.writer import document_to_string

DATASETS = ("shakespeare", "protein", "auction")


def _stats_tuple(result):
    return (result.stats.as_dict(), dict(result.stats.per_alias_elements))


@pytest.fixture(scope="module", params=DATASETS)
def workload(request):
    """(dataset name, indexed system, its Figure 10 queries)."""
    name = request.param
    system = BLAS.from_document(build_dataset(name, scale=1), name=name)
    return name, system, queries_for_dataset(name)


# -- explicit pairs: faithful vector == faithful memory -----------------------------


def test_explicit_vector_is_bit_identical_to_memory(workload):
    """records, values, order and every counter match the seed memory run."""
    name, system, queries = workload
    for translator in TRANSLATOR_NAMES:
        for query_name, query in queries.items():
            try:
                memory = system.query(query, translator=translator, engine="memory")
            except Exception as error:
                with pytest.raises(type(error)):
                    system.query(query, translator=translator, engine="vector")
                continue
            vector = system.query(query, translator=translator, engine="vector")
            label = (name, translator, query_name)
            assert vector.starts == memory.starts, label
            assert vector.records == memory.records, label
            assert vector.values() == memory.values(), label
            assert _stats_tuple(vector) == _stats_tuple(memory), label


# -- planner-routed: optimized vector == its mirrored row strategy ------------------


def test_planned_vector_matches_its_mirrored_row_engine(workload):
    name, system, queries = workload
    for query_name, query in queries.items():
        planned = system.plan_query(query, translator="auto", engine="vector")
        strategy = planned.physical.vector_strategy
        assert strategy in ("memory", "twig"), (name, query_name)
        row_physical = lower_plan(
            planned.logical,
            mode="optimized",
            engine=strategy,
            model=system.planner.model,
        )
        vector = system._executor.execute_physical(planned.physical)
        row = system._executor.execute_physical(row_physical)
        label = (name, query_name, strategy)
        assert vector.starts == row.starts, label
        assert vector.records == row.records, label
        assert _stats_tuple(vector) == _stats_tuple(row), label


def test_auto_with_vector_keeps_answers_identical(workload):
    name, system, queries = workload
    for query_name, query in queries.items():
        auto = system.query(query)
        seed = system.query(query, translator="pushup", engine="memory")
        assert auto.starts == seed.starts, (name, query_name)
        assert auto.stats.elements_read <= seed.stats.elements_read, (name, query_name)


def test_auto_picks_vector_only_when_costed_cheaper(workload):
    name, system, queries = workload
    for query_name, query in queries.items():
        planned = system.plan_query(query)
        chosen = next(c for c in planned.candidates if c.chosen)
        if chosen.engine != "vector":
            continue
        rivals = [
            c for c in planned.candidates
            if c.translator == chosen.translator and c.engine in ("memory", "twig")
        ]
        assert rivals, (name, query_name)
        assert all(
            chosen.cost.key() <= rival.cost.key() for rival in rivals
        ), (name, query_name)


def test_cached_plan_reexecution_is_stable(workload):
    name, system, queries = workload
    query = next(iter(queries.values()))
    system.plan_cache.clear()
    first = system.query(query, engine="vector")
    second = system.query(query, engine="vector")
    assert second.planned.cache_hit and not first.planned.cache_hit
    assert second.starts == first.starts
    assert second.records == first.records
    assert _stats_tuple(second) == _stats_tuple(first)


# -- collection fan-out -------------------------------------------------------------


@pytest.fixture(scope="module")
def corpus():
    """One collection holding all three bundled datasets."""
    collection = BLASCollection()
    for name in DATASETS:
        collection.add_xml(document_to_string(build_dataset(name, scale=1)), name=name)
    return collection

COLLECTION_QUERIES = ("//name", "//SPEECH/LINE", "//category/description/parlist/listitem")


@pytest.mark.parametrize("query", COLLECTION_QUERIES)
def test_collection_vector_fanout_matches_memory(corpus, query):
    """Vector fan-out: per-document order, counters and merge all identical."""
    memory = corpus.query(query, engine="memory", parallel=False)
    serial = corpus.query(query, engine="vector", parallel=False)
    parallel = corpus.query(query, engine="vector", parallel=True, workers=4)
    for vector in (serial, parallel):
        assert vector.starts == memory.starts
        assert vector.records == memory.records
        assert vector.stats.as_dict() == memory.stats.as_dict()
        assert [dr.result.starts for dr in vector.per_document] == [
            dr.result.starts for dr in memory.per_document
        ]
        assert [dr.result.records for dr in vector.per_document] == [
            dr.result.records for dr in memory.per_document
        ]


# -- limit pushdown and count-only --------------------------------------------------


def test_limit_bounds_materialization_not_the_answer(workload):
    name, system, queries = workload
    for query_name, query in queries.items():
        full = system.query(query, engine="vector")
        limited = system.query(query, engine="vector", limit=3)
        assert limited.starts == full.starts, (name, query_name)
        assert limited.count == full.count, (name, query_name)
        assert limited.records == full.records[:3], (name, query_name)
        assert limited.stats.as_dict() == full.stats.as_dict(), (name, query_name)


def test_count_only_skips_record_materialization(workload):
    name, system, queries = workload
    for query_name, query in queries.items():
        full = system.query(query, engine="vector")
        counted = system.query(query, engine="vector", count_only=True)
        assert counted.records == [] and counted.values() == []
        assert counted.starts == full.starts, (name, query_name)
        assert counted.count == full.count, (name, query_name)
        assert counted.stats.as_dict() == full.stats.as_dict(), (name, query_name)


def test_limit_applies_to_row_engines_too(workload):
    name, system, queries = workload
    query = next(iter(queries.values()))
    for engine in ("memory", "twig"):
        full = system.query(query, translator="pushup", engine=engine)
        limited = system.query(query, translator="pushup", engine=engine, limit=2)
        assert limited.records == full.records[:2]
        assert limited.count == full.count


def test_collection_limit_and_count_only(corpus):
    full = corpus.query("//name", engine="vector")
    limited = corpus.query("//name", engine="vector", limit=4)
    counted = corpus.query("//name", engine="vector", count_only=True)
    assert limited.records == full.records[:4]
    assert limited.count == full.count == counted.count
    assert counted.records == []
    assert counted.stats.as_dict() == full.stats.as_dict()
    # starts always identify the full answer, bounded records or not.
    assert limited.starts == full.starts == counted.starts
    assert len(full.starts) == full.count


# -- kernel unit tests --------------------------------------------------------------


def _record(plabel, start, end, level, tag="t", data=None):
    return NodeRecord(plabel=plabel, start=start, end=end, level=level, tag=tag, data=data)


def _pack(records):
    """Pack records and return (columns, slot-by-start lookup)."""
    columns = ColumnarRecords.from_records(records, doc_id=0)
    by_start = {columns.starts[slot]: slot for slot in range(columns.n)}
    return columns, by_start


#: A small interval tree with duplicate plabels: two `a` chains (same
#: plabel) at different positions, nested descendants, and a sibling leaf.
KERNEL_RECORDS = [
    _record(7, 0, 99, 1),          # root
    _record(3, 1, 40, 2),          # a (first)
    _record(5, 2, 10, 3),          # b inside first a
    _record(5, 12, 30, 3),         # b' inside first a (duplicate plabel of b)
    _record(3, 50, 90, 2),         # a' (duplicate plabel of a)
    _record(5, 55, 60, 3),         # b'' inside a'
    _record(11, 95, 97, 2),        # sibling leaf outside both
]


def _compare_kernels(ancestors, descendants, level_gap=None, min_level_gap=None):
    records = KERNEL_RECORDS
    columns, by_start = _pack(records)
    row_stats = AccessStatistics()
    slot_stats = AccessStatistics()
    expected = structural_join(
        ancestors, descendants, level_gap, min_level_gap, row_stats
    )
    actual = structural_join_slots(
        columns,
        [by_start[record.start] for record in ancestors],
        [by_start[record.start] for record in descendants],
        level_gap,
        min_level_gap,
        slot_stats,
    )
    assert actual == expected
    assert slot_stats.as_dict() == row_stats.as_dict()


def test_kernel_matches_record_join_on_duplicate_plabels():
    records = KERNEL_RECORDS
    _compare_kernels([records[1], records[4]], [records[2], records[3], records[5]])


def test_kernel_matches_record_join_with_duplicated_inputs():
    """Bound aliases repeat the same record once per intermediate row."""
    records = KERNEL_RECORDS
    _compare_kernels(
        [records[1], records[1], records[0], records[4]],
        [records[2], records[2], records[5], records[6]],
    )


def test_kernel_matches_record_join_with_level_constraints():
    records = KERNEL_RECORDS
    _compare_kernels([records[0]], [records[2], records[5]], level_gap=2)
    _compare_kernels([records[0]], [records[2], records[5]], min_level_gap=2)
    _compare_kernels([records[0]], [records[2], records[5]], min_level_gap=3)


def test_kernel_empty_and_singleton_inputs():
    records = KERNEL_RECORDS
    _compare_kernels([], [])
    _compare_kernels([], [records[2]])
    _compare_kernels([records[1]], [])
    _compare_kernels([records[1]], [records[2]])
    _compare_kernels([records[6]], [records[2]])  # disjoint intervals


def test_column_slice_accessors_and_materialize():
    records = [
        _record(7, 0, 99, 1, tag="root"),
        _record(3, 1, 40, 2, tag="a", data="x"),
        _record(5, 2, 10, 3, tag="b"),
    ]
    columns, by_start = _pack(records)
    whole = ColumnSlice.contiguous(columns, 0, columns.n - 1)
    assert len(whole) == len(records)
    ordered = whole.sorted_by_start()
    # Every gather accessor agrees with the record view, in slice order.
    materialized = ordered.materialize()
    assert ordered.starts() == [r.start for r in materialized]
    assert ordered.ends() == [r.end for r in materialized]
    assert ordered.levels() == [r.level for r in materialized]
    assert ordered.plabels() == [r.plabel for r in materialized]
    assert ordered.tag_names() == [r.tag for r in materialized]
    assert ordered.data_values() == [r.data for r in materialized]
    assert ordered.tag_names() == ["root", "a", "b"]
    assert ordered.data_values() == [None, "x", None]
    assert [r.start for r in ordered.materialize(2)] == [0, 1]
    empty = ColumnSlice.contiguous(columns, 2, 1)
    assert len(empty) == 0 and empty.materialize() == []
    sliced = ordered[1:3]
    assert isinstance(sliced, ColumnSlice) and len(sliced) == 2


def test_vector_scan_handles_missing_tag_and_value():
    system = BLAS.from_xml("<root><a>x</a><a>y</a><b/></root>")
    for query in ("//ghost", '//a = "nope"', "//a", '//a = "x"'):
        memory = system.query(query, translator="dlabel", engine="memory")
        vector = system.query(query, translator="dlabel", engine="vector")
        assert vector.starts == memory.starts, query
        assert _stats_tuple(vector) == _stats_tuple(memory), query


def test_store_opened_system_answers_identically_with_vector(tmp_path, workload):
    """Vector over the *packed* store: cold-opened answers match in-memory."""
    name, system, queries = workload
    store = tmp_path / f"{name}.store"
    system.save(str(store))
    opened = BLAS.open(str(store))
    for query_name, query in queries.items():
        fresh = system.query(query, translator="pushup", engine="memory")
        vector = opened.query(query, translator="pushup", engine="vector")
        assert vector.starts == fresh.starts, (name, query_name)
        assert vector.values() == fresh.values(), (name, query_name)
        assert _stats_tuple(vector) == _stats_tuple(fresh), (name, query_name)
