"""Tests for P-labeling (paper §3.2, Definitions 3.2/3.3, Algorithms 1-2)."""

from __future__ import annotations

import pytest

from repro.core.plabel import (
    NodePLabeler,
    PLabelInterval,
    PLabelScheme,
    build_scheme_for_tags,
    decode_plabel_text,
    encode_plabel_text,
)
from repro.exceptions import LabelingError
from repro.xmlkit.parser import drive, iterparse

TAGS = ["db", "entry", "protein", "name", "reference", "refinfo", "author"]


@pytest.fixture()
def scheme():
    return PLabelScheme(TAGS, height=6)


def test_interval_validation():
    with pytest.raises(LabelingError):
        PLabelInterval(10, 5)


def test_interval_containment_and_overlap():
    outer = PLabelInterval(10, 100)
    inner = PLabelInterval(20, 30)
    disjoint = PLabelInterval(200, 300)
    assert outer.contains_interval(inner)
    assert not inner.contains_interval(outer)
    assert outer.overlaps(inner)
    assert not outer.overlaps(disjoint)
    assert outer.contains_point(10) and outer.contains_point(100)
    assert not outer.contains_point(101)


def test_domain_size_follows_the_construction(scheme):
    # n tags -> base n+1, exponent height+1.
    assert scheme.base == len(TAGS) + 1
    assert scheme.domain == scheme.base ** (scheme.height + 1)


def test_whole_domain_for_the_empty_suffix_path(scheme):
    interval = scheme.suffix_path_interval([])
    assert (interval.p1, interval.p2) == (0, scheme.domain - 1)


def test_algorithm1_matches_closed_form(scheme):
    cases = [
        (["name"], False),
        (["protein", "name"], False),
        (["entry", "protein", "name"], False),
        (["db", "entry", "protein", "name"], True),
        (["db"], True),
        (["refinfo", "author"], False),
    ]
    for steps, rooted in cases:
        literal = scheme.suffix_path_interval(steps, rooted)
        closed = scheme.suffix_path_interval_digits(steps, rooted)
        assert literal == closed, (steps, rooted)


def test_containment_mirrors_path_containment(scheme):
    # //protein/name is contained in //name (paper: P ⊆ Q iff interval inside).
    broad = scheme.suffix_path_interval(["name"])
    narrow = scheme.suffix_path_interval(["protein", "name"])
    narrower = scheme.suffix_path_interval(["entry", "protein", "name"])
    rooted = scheme.suffix_path_interval(["db", "entry", "protein", "name"], rooted=True)
    assert broad.contains_interval(narrow)
    assert narrow.contains_interval(narrower)
    assert narrower.contains_interval(rooted)
    assert not narrow.contains_interval(broad)


def test_nonintersection_of_unrelated_paths(scheme):
    one = scheme.suffix_path_interval(["protein", "name"])
    other = scheme.suffix_path_interval(["refinfo", "author"])
    assert not one.overlaps(other)


def test_unknown_tag_gives_no_interval(scheme):
    assert scheme.suffix_path_interval(["unknown"]) is None
    assert scheme.suffix_path_interval(["protein", "unknown"]) is None


def test_path_longer_than_height_matches_nothing(scheme):
    # A query path longer than any possible document path is statically empty.
    assert scheme.suffix_path_interval(["db"] * (scheme.height + 1)) is None
    with pytest.raises(LabelingError):
        scheme.node_plabel(["db"] * (scheme.height + 1))


def test_node_plabel_is_interval_start_of_rooted_path(scheme):
    tags = ["db", "entry", "protein", "name"]
    interval = scheme.suffix_path_interval(tags, rooted=True)
    assert scheme.node_plabel(tags) == interval.p1


def test_node_plabel_rejects_unknown_tags(scheme):
    with pytest.raises(LabelingError):
        scheme.node_plabel(["db", "mystery"])


def test_plabel_matches_implements_proposition_32(scheme):
    node = scheme.node_plabel(["db", "entry", "protein", "name"])
    assert scheme.plabel_matches(node, ["name"])
    assert scheme.plabel_matches(node, ["protein", "name"])
    assert scheme.plabel_matches(node, ["db", "entry", "protein", "name"], rooted=True)
    assert not scheme.plabel_matches(node, ["refinfo", "name"])
    assert not scheme.plabel_matches(node, ["entry", "name"])
    assert not scheme.plabel_matches(node, ["db", "entry", "protein"], rooted=True)


def test_rooted_interval_contains_only_the_exact_path(scheme):
    # Proposition 3.2: for a simple path, evaluation is an equality test.
    rooted = scheme.suffix_path_interval(["db", "entry"], rooted=True)
    deeper = scheme.node_plabel(["db", "entry", "protein"])
    exact = scheme.node_plabel(["db", "entry"])
    assert rooted.contains_point(exact)
    assert not rooted.contains_point(deeper)


def test_decode_plabel_round_trips(scheme):
    tags = ["db", "entry", "reference", "refinfo", "author"]
    assert scheme.decode_plabel(scheme.node_plabel(tags)) == tags


def test_tag_order_does_not_affect_correctness():
    forward = PLabelScheme(TAGS, height=6)
    backward = PLabelScheme(list(reversed(TAGS)), height=6)
    for variant in (forward, backward):
        node = variant.node_plabel(["db", "entry", "protein", "name"])
        assert variant.plabel_matches(node, ["protein", "name"])
        assert not variant.plabel_matches(node, ["refinfo", "author"])


def test_node_plabeler_streams_algorithm2(scheme):
    text = "<db><entry><protein><name>x</name></protein></entry></db>"
    labeler = NodePLabeler(scheme)
    drive(iterparse(text), labeler)
    labelled = dict(labeler.labelled_nodes())
    assert labelled["name"] == scheme.node_plabel(["db", "entry", "protein", "name"])
    assert labelled["db"] == scheme.node_plabel(["db"])


def test_node_plabeler_rejects_unknown_tags(scheme):
    with pytest.raises(LabelingError):
        drive(iterparse("<db><oops/></db>"), NodePLabeler(scheme))


def test_build_scheme_deduplicates_and_sorts_tags():
    scheme = build_scheme_for_tags(["b", "a", "b", "c"], max_depth=3)
    assert scheme.tags == ["a", "b", "c"]
    assert scheme.height == 3


def test_text_encoding_round_trips_and_preserves_order():
    values = [0, 1, 17, 10**30, 5 * 10**30]
    encoded = [encode_plabel_text(value) for value in values]
    assert encoded == sorted(encoded)
    assert [decode_plabel_text(text) for text in encoded] == values


def test_text_encoding_rejects_oversized_values():
    with pytest.raises(LabelingError):
        encode_plabel_text(10 ** 200)
    with pytest.raises(LabelingError):
        encode_plabel_text(-1)
