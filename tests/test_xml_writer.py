"""Tests for XML serialisation (round-trips through the parser)."""

from __future__ import annotations

from repro.xmlkit.model import Document, Element
from repro.xmlkit.parser import parse_string
from repro.xmlkit.writer import (
    document_to_string,
    element_to_string,
    escape_attribute,
    escape_text,
    write_document,
)


def test_escape_text_handles_markup_characters():
    assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"


def test_escape_attribute_also_escapes_quotes():
    assert escape_attribute('say "hi" & bye') == "say &quot;hi&quot; &amp; bye"


def test_empty_element_serialises_as_self_closing():
    assert element_to_string(Element("a"), pretty=False) == "<a/>"


def test_attributes_are_serialised_from_the_mapping_once():
    element = Element("item")
    element.set_attribute("id", "1")
    text = element_to_string(element, pretty=False)
    assert text.count("id=") == 1
    assert "@id" not in text


def test_document_declaration_is_optional():
    document = Document(Element("a"))
    with_decl = document_to_string(document)
    without_decl = document_to_string(document, declaration=False)
    assert with_decl.startswith("<?xml")
    assert not without_decl.startswith("<?xml")


def test_round_trip_preserves_structure_and_text():
    source = '<a id="1"><b>one &amp; two</b><c/><d lang="en">x</d></a>'
    document = parse_string(source)
    rewritten = document_to_string(document, pretty=False, declaration=False)
    reparsed = parse_string(rewritten)
    assert [node.tag for node in reparsed.iter()] == [node.tag for node in document.iter()]
    assert reparsed.root.children[0].text == "one & two" or reparsed.root.find_descendants("b")[0].text == "one & two"


def test_round_trip_preserves_attribute_values():
    source = '<a><b ref="x &amp; y"/></a>'
    reparsed = parse_string(document_to_string(parse_string(source), pretty=False))
    b = reparsed.root.find_descendants("b")[0]
    assert b.attributes["ref"] == "x & y"


def test_pretty_output_is_indented():
    document = parse_string("<a><b><c>x</c></b></a>")
    text = document_to_string(document, pretty=True)
    assert "\n" in text
    assert "    <c>" in text


def test_write_document_returns_byte_count(tmp_path):
    document = parse_string("<a><b>x</b></a>")
    path = tmp_path / "out.xml"
    written = write_document(document, str(path))
    assert written == len(path.read_bytes())
    assert parse_string(path.read_text()).root.tag == "a"


def test_generated_dataset_round_trips(shakespeare_document):
    text = document_to_string(shakespeare_document)
    reparsed = parse_string(text)
    assert reparsed.count_nodes() == shakespeare_document.count_nodes()
    assert reparsed.max_depth() == shakespeare_document.max_depth()
    assert reparsed.distinct_tags() == shakespeare_document.distinct_tags()
