"""The dynamic lock-order race detector (``repro.analysis.lockwatch``).

Covers the detector mechanics on private :class:`LockWatch` instances
(inversion detection, unguarded-write detection, wrapper transparency)
and the product integration: with ``REPRO_LOCKWATCH=1`` an instrumented
collection and daemon run the full stats surface — ``cache_stats()``,
``stats()``, HTTP ``/stats`` — without tripping the detector, and a
deliberately inverted acquisition order fails loudly.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.analysis.lockwatch import InstrumentedLock, LockWatch
from repro.collection import BLASCollection
from repro.exceptions import AnalysisError

DOC = "<lib><book><title>alpha</title></book></lib>"


# -- detector mechanics -------------------------------------------------------------


def test_inversion_is_detected():
    """Acquiring A→B on one thread and B→A on another is an inversion."""
    watch = LockWatch()
    a = watch.wrap(threading.Lock(), "A")
    b = watch.wrap(threading.Lock(), "B")

    with a:
        with b:
            pass
    assert watch.inversions == []

    def inverted():
        with b:
            with a:
                pass

    worker = threading.Thread(target=inverted)
    worker.start()
    worker.join()

    assert len(watch.inversions) == 1
    assert watch.violations() == 1
    report = watch.report()
    assert report["inversions"]
    inversion = report["inversions"][0]
    assert {inversion["first"], inversion["second"]} == {"A", "B"}
    assert inversion["stack"] and inversion["reverse_stack"]


def test_inversion_reported_once_per_pair():
    watch = LockWatch()
    a = watch.wrap(threading.Lock(), "A")
    b = watch.wrap(threading.Lock(), "B")
    with a:
        with b:
            pass
    for _ in range(3):
        with b:
            with a:
                pass
    assert len(watch.inversions) == 1


def test_consistent_order_is_clean():
    watch = LockWatch()
    a = watch.wrap(threading.Lock(), "A")
    b = watch.wrap(threading.Lock(), "B")
    for _ in range(5):
        with a:
            with b:
                pass
    assert watch.inversions == []
    assert watch.report()["edges"] == [("A", "B")]


def test_reentrant_lock_draws_no_self_edge():
    watch = LockWatch()
    lock = watch.wrap(threading.RLock(), "R")
    with lock:
        with lock:
            pass
    assert watch.report()["edges"] == []
    assert watch.inversions == []


def test_unguarded_write_is_detected():
    watch = LockWatch()

    class Holder:
        def __init__(self):
            self._lock = watch.wrap(threading.Lock(), "Holder._lock")
            self.count = 0

    holder = Holder()
    watch.guard_fields(holder, ("count",), holder._lock)

    with holder._lock:
        holder.count += 1  # guarded write: clean
    assert watch.unguarded_writes == []

    holder.count += 1  # unguarded write: reported
    assert len(watch.unguarded_writes) == 1
    assert watch.unguarded_writes[0]["field"] == "count"
    assert watch.violations() == 1
    # The write still happened — the detector observes, never blocks.
    assert holder.count == 2


def test_unguarded_write_reported_once_per_field():
    watch = LockWatch()

    class Holder:
        def __init__(self):
            self._lock = watch.wrap(threading.Lock(), "Holder._lock")
            self.count = 0

    holder = Holder()
    watch.guard_fields(holder, ("count",), holder._lock)
    for _ in range(4):
        holder.count += 1
    assert len(watch.unguarded_writes) == 1


def test_guard_fields_requires_instrumented_lock():
    watch = LockWatch()
    with pytest.raises(AnalysisError):
        watch.guard_fields(object(), ("x",), threading.Lock())


def test_wrapper_preserves_lock_surface():
    watch = LockWatch()
    inner = threading.RLock()
    lock = watch.wrap(inner, "L")
    assert isinstance(lock, InstrumentedLock)
    assert repr(lock) == repr(inner)
    assert lock.acquire(timeout=1)
    assert lock.held_by_current_thread()
    lock.release()
    assert not lock.held_by_current_thread()
    with lock:
        assert lock.held_by_current_thread()
    # Wrapping an already-wrapped lock is the identity.
    assert watch.wrap(lock, "L") is lock


def test_clear_resets_the_watch():
    watch = LockWatch()
    a = watch.wrap(threading.Lock(), "A")
    with a:
        pass
    assert watch.acquisitions == 1
    watch.clear()
    assert watch.acquisitions == 0
    assert watch.report()["edges"] == []


# -- product integration ------------------------------------------------------------


@pytest.fixture
def lockwatch_env(monkeypatch):
    """Enable lockwatch and isolate the process-global WATCH state."""
    from repro.analysis.lockwatch import WATCH

    monkeypatch.setenv("REPRO_LOCKWATCH", "1")
    WATCH.clear()
    yield WATCH
    WATCH.clear()


def test_instrumented_collection_stats_are_clean(lockwatch_env):
    """The ride-along fix: the full stats surface works while every lock
    is wrapped, and a query workload draws no inversion reports."""
    collection = BLASCollection()
    collection.add_xml(DOC, name="a")
    collection.add_xml(DOC.replace("alpha", "beta"), name="b")
    assert type(collection._mutation_lock).__name__ == "InstrumentedLock"

    collection.query("/lib/book/title")
    stats = collection.stats()
    assert stats["documents"] == 2
    assert "partition_cache" in stats
    assert "plan_cache" in stats
    cache_stats = collection.store.cache_stats()
    assert {"hits", "misses", "evictions", "cached_partitions"} <= set(cache_stats)

    assert lockwatch_env.violations() == 0
    assert lockwatch_env.acquisitions > 0


def test_instrumented_collection_save_open_clean(lockwatch_env, tmp_path):
    collection = BLASCollection()
    collection.add_xml(DOC, name="a")
    collection.save(str(tmp_path / "store"))
    reopened = BLASCollection.open(str(tmp_path / "store"))
    reopened.query("/lib/book/title")
    assert reopened.stats()["documents"] == 1
    assert lockwatch_env.violations() == 0


def test_instrumented_daemon_stats_endpoint_clean(lockwatch_env, tmp_path):
    from repro.server import DaemonServer

    collection = BLASCollection()
    collection.add_xml(DOC, name="a")
    collection.save(str(tmp_path / "store"))
    server = DaemonServer(BLASCollection.open(str(tmp_path / "store")))
    server.start()
    try:
        base = f"http://127.0.0.1:{server.port}"
        # Counters commit after the response is written, so the second
        # request observes the first.
        for _ in range(2):
            with urllib.request.urlopen(f"{base}/stats", timeout=10) as response:
                payload = json.loads(response.read().decode("utf-8"))
        assert payload["server"]["requests"]["stats"] >= 1
        assert "plan_cache" in payload["collection"]
    finally:
        server.stop()
    assert lockwatch_env.violations() == 0


def test_deliberate_inversion_fails_loudly(lockwatch_env):
    """The acceptance probe: an artificial mutation-lock/catalog-lock
    inversion must surface as a reported violation."""
    collection = BLASCollection()
    collection.add_xml(DOC, name="a")
    mutation = collection._mutation_lock
    catalog = collection.store._lock

    # The product's order (established by add/query paths):
    with mutation:
        with catalog:
            pass
    baseline = lockwatch_env.violations()

    def inverted():
        with catalog:
            with mutation:
                pass

    worker = threading.Thread(target=inverted)
    worker.start()
    worker.join()

    assert lockwatch_env.violations() == baseline + 1
    locks = {
        name
        for inversion in lockwatch_env.inversions
        for name in (inversion["first"], inversion["second"])
    }
    assert "BLASCollection._mutation_lock" in locks
    assert "PartitionedCatalog._lock" in locks
