"""Tests for the v2 binary columnar partition format.

Covers the format-negotiation matrix (v1 and v2 stores answer every
workload query — results, counters, chosen plans — byte-identically to a
never-saved collection and to each other), corruption detection
(truncation and bit flips anywhere in a v2 file raise ``PersistError`` via
the checksum trailer), mixed-format stores (a v1 store keeps working after
v2 appends), the >64-bit plabel encoding the auction dataset needs, and
the laziness property the columnar tables exist for: a selective query
materializes only the records it scans.
"""

from __future__ import annotations

import glob
import os
import re

import pytest

from repro.collection import BLASCollection
from repro.datasets import QUERY_SETS, build_dataset
from repro.exceptions import PersistError
from repro.storage.persist import (
    DEFAULT_PARTITION_FORMAT,
    PARTITION_MAGIC,
    CollectionStore,
)
from repro.xmlkit.writer import document_to_string

DATASET_NAMES = ("shakespeare", "protein", "auction")


@pytest.fixture(scope="module")
def dataset_texts():
    return {
        name: document_to_string(build_dataset(name, scale=1))
        for name in DATASET_NAMES
    }


def build_collection(texts) -> BLASCollection:
    collection = BLASCollection()
    for name, text in texts.items():
        collection.add_xml(text, name=name)
    return collection


def _partition_files(store: str):
    return sorted(glob.glob(os.path.join(store, "partitions", "*")))


# -- format negotiation & cross-format equivalence ----------------------------------


def test_v2_is_the_default_write_format(dataset_texts, tmp_path):
    store = str(tmp_path / "store")
    build_collection(dataset_texts).save(store)
    assert DEFAULT_PARTITION_FORMAT == "v2"
    for path in _partition_files(store):
        assert path.endswith(".blas")
        with open(path, "rb") as handle:
            assert handle.read(8) == PARTITION_MAGIC


def test_v1_and_v2_stores_answer_identically(dataset_texts, tmp_path):
    """The format is invisible: same results, counters and chosen plans."""
    fresh = build_collection(dataset_texts)
    stores = {}
    for partition_format in ("v1", "v2"):
        saver = build_collection(dataset_texts)
        store = str(tmp_path / f"store-{partition_format}")
        saver.save(store, partition_format=partition_format)
        stores[partition_format] = BLASCollection.open(store)
    for dataset in DATASET_NAMES:
        for query_name, query_text in QUERY_SETS[dataset].items():
            baseline = fresh.query(query_text)
            for partition_format, opened in stores.items():
                answer = opened.query(query_text)
                context = (dataset, query_name, partition_format)
                assert answer.starts == baseline.starts, context
                assert answer.values() == baseline.values(), context
                assert answer.stats.as_dict() == baseline.stats.as_dict(), context
                assert answer.translator == baseline.translator, context
                assert answer.engine == baseline.engine, context
    # EXPLAIN output (candidates, chosen plans, per-document costs) matches
    # across formats too — the plans, not just the answers, are identical.
    # Measured planning latency is the one legitimately format-independent
    # difference, so the wall-clock figures are masked before comparing.
    def stable(text):
        text = re.sub(r"planning: \d+\.\d+ ms", "planning: _ ms", text)
        return re.sub(r"(plan_ms_\w+)=\d+\.\d+", r"\1=_", text)

    for dataset in DATASET_NAMES:
        for query_text in QUERY_SETS[dataset].values():
            assert stable(stores["v1"].explain(query_text)) == stable(
                stores["v2"].explain(query_text)
            )


def test_v2_partitions_are_smaller_than_v1(dataset_texts, tmp_path):
    for partition_format in ("v1", "v2"):
        build_collection(dataset_texts).save(
            str(tmp_path / partition_format), partition_format=partition_format
        )
    sizes = {
        partition_format: sum(
            os.path.getsize(path)
            for path in _partition_files(str(tmp_path / partition_format))
        )
        for partition_format in ("v1", "v2")
    }
    assert sizes["v2"] < sizes["v1"]


def test_mixed_format_store_reads_fine(dataset_texts, tmp_path):
    """An opened v1 store appends v2 partitions; both load side by side."""
    store = str(tmp_path / "store")
    first = BLASCollection()
    first.add_xml(dataset_texts["protein"], name="protein")
    first.save(store, partition_format="v1")
    opened = BLASCollection.open(store)
    opened.add_xml(dataset_texts["shakespeare"], name="shakespeare")
    extensions = {path.rsplit(".", 1)[1] for path in _partition_files(store)}
    assert extensions == {"json", "blas"}
    reopened = BLASCollection.open(store)
    assert reopened.doc_ids() == [0, 1]
    assert reopened.query("//name").count == opened.query("//name").count
    assert reopened.query("//TITLE").count > 0


def test_unknown_partition_format_is_rejected(tmp_path):
    with pytest.raises(PersistError, match="v1, v2"):
        CollectionStore(str(tmp_path), partition_format="v3")
    with pytest.raises(PersistError):
        BLASCollection().save(str(tmp_path / "s"), partition_format="json")


def test_wide_plabels_survive_the_binary_round_trip(dataset_texts, tmp_path):
    """Auction plabels exceed 64 bits; the be-N column encoding carries them."""
    fresh = BLASCollection()
    fresh.add_xml(dataset_texts["auction"], name="auction")
    catalog = fresh.store.catalog_for(0)
    assert max(r.plabel for r in catalog.sp.records).bit_length() > 64
    store = str(tmp_path / "store")
    fresh.save(store)
    opened = BLASCollection.open(store)
    reread = opened.store.catalog_for(0)
    assert [r.plabel for r in reread.sp.records] == [
        r.plabel for r in catalog.sp.records
    ]
    for query_text in QUERY_SETS["auction"].values():
        assert opened.query(query_text).starts == fresh.query(query_text).starts


# -- corruption detection -----------------------------------------------------------


def _single_doc_store(dataset_texts, tmp_path) -> str:
    store = str(tmp_path / "store")
    fresh = BLASCollection()
    fresh.add_xml(dataset_texts["protein"], name="protein")
    fresh.save(store)
    return store


def test_truncated_v2_partition_is_rejected(dataset_texts, tmp_path):
    store = _single_doc_store(dataset_texts, tmp_path)
    (partition,) = _partition_files(store)
    with open(partition, "rb") as handle:
        blob = handle.read()
    with open(partition, "wb") as handle:
        handle.write(blob[: len(blob) // 2])
    with pytest.raises(PersistError, match="checksum|truncated"):
        BLASCollection.open(store).query("//name")


@pytest.mark.parametrize("where", ["header", "payload", "trailer"])
def test_bit_flipped_v2_partition_is_rejected(dataset_texts, tmp_path, where):
    """A single flipped bit anywhere in the file trips the checksum."""
    store = _single_doc_store(dataset_texts, tmp_path)
    (partition,) = _partition_files(store)
    with open(partition, "rb") as handle:
        blob = bytearray(handle.read())
    offset = {"header": 20, "payload": len(blob) // 2, "trailer": len(blob) - 1}[where]
    blob[offset] ^= 0x40
    with open(partition, "wb") as handle:
        handle.write(bytes(blob))
    with pytest.raises(PersistError, match="checksum"):
        BLASCollection.open(store).query("//name")


def test_garbage_partition_file_is_rejected(dataset_texts, tmp_path):
    store = _single_doc_store(dataset_texts, tmp_path)
    (partition,) = _partition_files(store)
    with open(partition, "wb") as handle:
        handle.write(b"this is neither JSON nor a BLASCP02 file")
    with pytest.raises(PersistError):
        BLASCollection.open(store).query("//name")


def test_empty_partition_file_is_rejected(dataset_texts, tmp_path):
    store = _single_doc_store(dataset_texts, tmp_path)
    (partition,) = _partition_files(store)
    open(partition, "wb").close()
    with pytest.raises(PersistError):
        BLASCollection.open(store).query("//name")


def test_wrong_doc_partition_is_rejected_by_fingerprint(dataset_texts, tmp_path):
    """A checksum-valid v2 file wired to the wrong manifest row must fail.

    Copying another document's (intact) partition over this one defeats the
    checksum — only the manifest fingerprint cross-check catches it.
    """
    store = str(tmp_path / "store")
    both = BLASCollection()
    both.add_xml(dataset_texts["protein"], name="protein")
    both.add_xml(dataset_texts["protein"].replace("protein>", "enzyme>"),
                 name="variant")
    both.save(store)
    first, second = _partition_files(store)
    with open(second, "rb") as handle:
        blob = handle.read()
    # Rewrite doc 1's bytes so they claim doc 0's identity is impossible —
    # instead copy doc 0's file body over doc 1's path: same doc_id check
    # would fire; so instead swap contents wholesale and expect *either*
    # the doc_id or fingerprint guard, both PersistError.
    with open(first, "rb") as handle:
        other = handle.read()
    with open(second, "wb") as handle:
        handle.write(other)
    opened = BLASCollection.open(store)
    with pytest.raises(PersistError):
        opened.store.catalog_for(1)


# -- laziness -----------------------------------------------------------------------


def test_selective_scan_materializes_only_matched_records(dataset_texts, tmp_path):
    """The columnar table bisects packed columns; untouched rows stay packed."""
    store = str(tmp_path / "store")
    fresh = BLASCollection()
    fresh.add_xml(dataset_texts["shakespeare"], name="shakespeare")
    fresh.save(store)
    opened = BLASCollection.open(store)
    result = opened.query("//PLAY/TITLE")
    assert 0 < result.count < 100
    catalog = opened.store.catalog_for(0)
    columns = catalog.sp._columns
    assert columns is not None
    materialized = sum(1 for r in columns._record_cache if r is not None)
    # Planning samples a few hundred records at most (statistics build from
    # the packed columns, the fingerprint check from a bounded sample); the
    # scan itself adds only the rows it returned.
    assert materialized < columns.n


# -- concurrency --------------------------------------------------------------------


def test_concurrent_queries_on_a_lazily_opened_store(dataset_texts, tmp_path):
    """Many threads forcing the same lazy partitions must not race.

    Before the partition set took a lock, two threads materializing the
    same partition both ran the loader and the loser crashed deleting the
    already-deleted lazy entry.
    """
    import threading

    store = str(tmp_path / "store")
    build_collection(dataset_texts).save(store)
    opened = BLASCollection.open(store)
    baseline = build_collection(dataset_texts).query("//name").starts
    errors = []
    barrier = threading.Barrier(6)

    def worker() -> None:
        try:
            barrier.wait()
            for _ in range(3):
                assert opened.query("//name").starts == baseline
        except Exception as error:  # pragma: no cover - only on regression
            errors.append(error)

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
