"""Planner integration: auto plans agree with every explicit pair."""

from __future__ import annotations

import pytest

from repro.exceptions import EngineError, PlanError, SchemaError
from repro.planner.physical import lower_plan
from repro.system import BLAS, ENGINE_NAMES, TRANSLATOR_NAMES
from repro.translate import translate
from tests.conftest import EXAMPLE_QUERY, PROTEIN_SAMPLE

WORKLOAD = (
    "//protein/name",
    "/ProteinDatabase/ProteinEntry//author",
    '//refinfo[year = "2001"]/title',
    "/ProteinDatabase/ProteinEntry[protein]/reference/refinfo",
    EXAMPLE_QUERY,
)


@pytest.mark.parametrize("query", WORKLOAD)
def test_auto_matches_every_explicit_pair(protein_system, query):
    """Property: the planner never changes answers, only plans."""
    auto = protein_system.query(query)
    for translator in TRANSLATOR_NAMES:
        for engine in ENGINE_NAMES:
            explicit = protein_system.query(query, translator=translator, engine=engine)
            assert auto.starts == explicit.starts, (translator, engine)


@pytest.mark.parametrize("query", WORKLOAD)
def test_auto_never_reads_more_than_the_seed_default(protein_system, query):
    auto = protein_system.query(query)
    seed = protein_system.query(query, translator="pushup", engine="memory")
    assert auto.stats.elements_read <= seed.stats.elements_read


def test_auto_reports_concrete_choices(protein_system):
    result = protein_system.query("//author")
    assert result.translator in TRANSLATOR_NAMES
    assert result.engine in ("memory", "twig", "vector")
    planned = result.planned
    assert planned is not None
    assert planned.requested_translator == "auto"
    assert planned.requested_engine == "auto"
    assert any(candidate.chosen for candidate in planned.candidates)


def test_explicit_translator_with_auto_engine(protein_system):
    result = protein_system.query("//author", translator="split")
    assert result.translator == "split"
    assert result.engine in ("memory", "twig", "vector")
    assert {c.translator for c in result.planned.candidates} == {"split"}


def test_auto_translator_with_explicit_engine(protein_system):
    result = protein_system.query("//author", engine="memory")
    assert result.engine == "memory"
    assert {c.engine for c in result.planned.candidates} == {"memory"}


def test_auto_never_picks_sqlite():
    system = BLAS.from_xml(PROTEIN_SAMPLE)
    for query in WORKLOAD:
        result = system.query(query)
        assert result.engine in ("memory", "twig", "vector")
    assert system._rdbms is None  # the planner never built it


def test_planner_skips_unfold_without_schema():
    from repro.core.indexer import index_text

    indexed = index_text(PROTEIN_SAMPLE, extract_schema_graph=False)
    system = BLAS(indexed)
    result = system.query("//author")
    assert result.translator in ("dlabel", "split", "pushup")
    assert result.count == 4


def test_explain_text_shows_candidates_and_actuals(protein_system):
    result = protein_system.query(EXAMPLE_QUERY)
    text = result.planned.explain(actual=result)
    assert "EXPLAIN" in text
    assert "candidates considered" in text
    assert "<- chosen" in text
    assert "physical plan" in text
    assert f"actual: elements_read={result.stats.elements_read}" in text


def test_system_explain_defaults_to_planner_output(protein_system):
    text = protein_system.explain("//protein/name")
    assert "EXPLAIN" in text and "PhysicalPlan" in text
    # A fully explicit pair keeps the seed's logical description.
    assert "QueryPlan[pushup]" in protein_system.explain(
        "//protein/name", "pushup", "memory"
    )


# -- error reporting ---------------------------------------------------------------


def test_unknown_translator_lists_choices(protein_system):
    with pytest.raises(EngineError) as excinfo:
        protein_system.query("//author", translator="magic")
    message = str(excinfo.value)
    assert "auto" in message and "pushup" in message and "unfold" in message


def test_unknown_engine_lists_choices(protein_system):
    with pytest.raises(EngineError) as excinfo:
        protein_system.query("//author", engine="hadoop")
    message = str(excinfo.value)
    assert "auto" in message and "memory" in message and "sqlite" in message


def test_translate_function_raises_plan_error(protein_system):
    tree = protein_system._query_tree("//author")
    with pytest.raises(PlanError) as excinfo:
        translate(tree, protein_system.scheme, "bogus")
    assert "pushup" in str(excinfo.value)


def test_unfold_without_schema_still_raises_schema_error():
    from repro.core.indexer import index_text

    indexed = index_text(PROTEIN_SAMPLE, extract_schema_graph=False)
    system = BLAS(indexed)
    with pytest.raises(SchemaError):
        system.query("//author", translator="unfold")


# -- physical lowering -------------------------------------------------------------


@pytest.mark.parametrize("mode", ["faithful", "optimized"])
@pytest.mark.parametrize("engine", ["memory", "twig", "vector"])
def test_lowering_modes_agree_on_results(protein_system, mode, engine):
    from repro.planner.cost import CostModel

    model = CostModel(protein_system.catalog.statistics())
    for query in WORKLOAD:
        plan = protein_system.translate(query, "pushup").plan
        physical = lower_plan(plan, mode=mode, engine=engine, model=model)
        result = protein_system._executor.execute_physical(physical)
        seed = protein_system.query(query, translator="pushup", engine="memory")
        assert result.starts == seed.starts, (mode, engine, query)


def test_residual_empty_predicate_never_regresses_the_seed():
    """Regression: a value predicate matching nothing must not make auto
    read more than the seed.  The seed short-circuits at the first
    post-residual-empty selection; the planner proves the emptiness from
    the exact residual counts and prunes the branch to zero scans."""
    xml = "<root>" + "<a><b>v</b><b>w</b><b>x</b><c>k</c></a>" * 50 + "</root>"
    system = BLAS.from_xml(xml)
    query = '//a[b = "nomatch"]//c'
    auto = system.query(query)
    seed = system.query(query, translator="pushup", engine="memory")
    assert auto.starts == seed.starts == []
    assert seed.stats.elements_read > 0  # the seed scans up to the empty selection
    assert auto.stats.elements_read == 0  # the planner skips every scan


def test_residual_value_elsewhere_in_document_is_still_exact():
    """The emptiness proof intersects the value with the selection's own
    cluster: a value that exists under a *different* path must not trip it."""
    xml = ("<root>" + "<a><b>v</b><c>k</c></a>" * 20
           + "<other><b>needle</b></other>" + "</root>")
    system = BLAS.from_xml(xml)
    for query in ('//a[b = "needle"]//c', '//a[b = "v"]//c'):
        auto = system.query(query)
        seed = system.query(query, translator="pushup", engine="memory")
        assert auto.starts == seed.starts, query
        assert auto.stats.elements_read <= seed.stats.elements_read, query


def test_optimized_lowering_prunes_statically_empty_branches(protein_system):
    from repro.planner.cost import CostModel

    model = CostModel(protein_system.catalog.statistics())
    plan = protein_system.translate("//ghost/author", "dlabel").plan
    physical = lower_plan(plan, mode="optimized", engine="memory", model=model)
    result = protein_system._executor.execute_physical(physical)
    assert result.starts == []
    assert result.stats.elements_read == 0  # not a single record scanned


def test_physical_plan_describe_names_the_operators(protein_system):
    planned = protein_system.plan_query(EXAMPLE_QUERY)
    text = planned.physical.describe()
    assert "Dedup" in text and "Project" in text
    assert "Scan" in text or "TwigJoin" in text
