"""Tests for the persistent on-disk collection store.

Covers the durability tentpole's acceptance criteria: byte-identical
round trips (index → save → open ≡ never-saved) across every bundled
dataset, O(manifest) lazy opening, incremental append/remove with atomic
manifest swaps, crash safety (a killed append leaves the old manifest
readable), format-version checking, and the ``BLAS.save``/``BLAS.open``
one-document convenience.
"""

from __future__ import annotations

import json
import os
import re

import pytest

from repro.collection import BLASCollection
from repro.datasets import QUERY_SETS, build_dataset
from repro.exceptions import CollectionError, PersistError
from repro.storage.persist import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    CollectionStore,
)
from repro.system import BLAS
from repro.xmlkit.writer import document_to_string
from tests.conftest import PROTEIN_SAMPLE

DATASET_NAMES = ("shakespeare", "protein", "auction")


def dataset_text(name: str) -> str:
    return document_to_string(build_dataset(name, scale=1))


@pytest.fixture(scope="module")
def dataset_texts():
    return {name: dataset_text(name) for name in DATASET_NAMES}


def build_collection(texts) -> BLASCollection:
    collection = BLASCollection()
    for name, text in texts.items():
        collection.add_xml(text, name=name)
    return collection


# -- round trips across every bundled dataset ---------------------------------------


@pytest.mark.parametrize("partition_format", ["v1", "v2"])
@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_round_trip_is_byte_identical_per_dataset(
    dataset, partition_format, dataset_texts, tmp_path
):
    """index → save → open answers every workload query ≡ never-saved.

    Holds for both partition formats — the binary columnar v2 layout and
    the JSON v1 layout persist exactly the same information.
    """
    fresh = BLASCollection()
    fresh.add_xml(dataset_texts[dataset], name=dataset)
    store = str(tmp_path / "store")
    fresh.save(store, partition_format=partition_format)
    opened = BLASCollection.open(store)
    for query_name, query_text in QUERY_SETS[dataset].items():
        a = fresh.query(query_text)
        b = opened.query(query_text)
        assert a.starts == b.starts, query_name
        assert a.values() == b.values(), query_name
        assert a.stats.as_dict() == b.stats.as_dict(), query_name
        assert a.translator == b.translator and a.engine == b.engine, query_name


def _stable_explain(text: str) -> str:
    """EXPLAIN text minus the wall-clock planning milliseconds.

    The ``planning: N.NNN ms (mode)`` line and the plan cache's
    ``plan_ms_total``/``plan_ms_saved`` counters report measured latency,
    which legitimately differs between two independently planned systems; the
    plan mode in parentheses stays part of the comparison.
    """
    text = re.sub(r"planning: \d+\.\d+ ms", "planning: _ ms", text)
    return re.sub(r"(plan_ms_\w+)=\d+\.\d+", r"\1=_", text)


def test_round_trip_preserves_plans_and_fingerprints(dataset_texts, tmp_path):
    fresh = build_collection(dataset_texts)
    store = str(tmp_path / "store")
    fresh.save(store)
    opened = BLASCollection.open(store)
    assert opened.store.fingerprint() == fresh.store.fingerprint()
    for doc_id in fresh.doc_ids():
        assert opened.store.partition_fingerprint(
            doc_id
        ) == fresh.store.partition_fingerprint(doc_id)
    for dataset in DATASET_NAMES:
        for query_text in QUERY_SETS[dataset].values():
            assert _stable_explain(opened.explain(query_text)) == _stable_explain(
                fresh.explain(query_text)
            )


def test_round_trip_preserves_membership_metadata(dataset_texts, tmp_path):
    fresh = build_collection(dataset_texts)
    store = str(tmp_path / "store")
    fresh.save(store)
    opened = BLASCollection.open(store)
    assert opened.doc_ids() == fresh.doc_ids()
    assert opened.documents() == fresh.documents()
    assert len(opened.scheme_groups()) == len(fresh.scheme_groups())
    for fresh_group, opened_group in zip(fresh.scheme_groups(), opened.scheme_groups()):
        assert opened_group.scheme.tags == fresh_group.scheme.tags
        assert opened_group.scheme.height == fresh_group.scheme.height
        assert opened_group.doc_ids == fresh_group.doc_ids


def test_unfold_translator_survives_a_round_trip(tmp_path):
    """Schema graphs persist, so explicitly-requested Unfold still plans."""
    fresh = BLASCollection()
    fresh.add_xml(PROTEIN_SAMPLE, name="protein")
    store = str(tmp_path / "store")
    fresh.save(store)
    opened = BLASCollection.open(store)
    query = "//ProteinEntry//name"
    a = fresh.query(query, translator="unfold", engine="memory")
    b = opened.query(query, translator="unfold", engine="memory")
    assert a.starts == b.starts
    assert a.stats.as_dict() == b.stats.as_dict()


# -- lazy open ----------------------------------------------------------------------


def test_open_is_lazy_until_first_query(dataset_texts, tmp_path):
    store = str(tmp_path / "store")
    build_collection(dataset_texts).save(store)
    opened = BLASCollection.open(store)
    assert all(not opened.store.is_loaded(doc_id) for doc_id in opened.doc_ids())
    # Listing, stats and fingerprints answer from the manifest alone.
    assert len(opened.documents()) == len(DATASET_NAMES)
    assert opened.stats()["loaded_documents"] == 0
    opened.store.fingerprint()
    assert opened.stats()["loaded_documents"] == 0
    # The first query materialises the partitions it scans.
    opened.query("//name")
    assert opened.stats()["loaded_documents"] > 0


def test_open_does_not_read_partition_files(dataset_texts, tmp_path, monkeypatch):
    store = str(tmp_path / "store")
    build_collection(dataset_texts).save(store)
    monkeypatch.setattr(
        CollectionStore,
        "read_partition",
        lambda self, entry, scheme: pytest.fail("open must not touch partition files"),
    )
    opened = BLASCollection.open(store)
    assert len(opened) == len(DATASET_NAMES)
    assert opened.stats()["nodes"] > 0


# -- append / remove persistence ----------------------------------------------------


def test_append_persists_incrementally(dataset_texts, tmp_path):
    store = str(tmp_path / "store")
    first = BLASCollection()
    first.add_xml(dataset_texts["protein"], name="protein")
    first.save(store)
    opened = BLASCollection.open(store)
    opened.add_xml(dataset_texts["shakespeare"], name="shakespeare")
    reopened = BLASCollection.open(store)
    assert reopened.doc_ids() == [0, 1]
    assert reopened.query("//TITLE").count == opened.query("//TITLE").count


def test_append_rewrites_only_the_new_partition(dataset_texts, tmp_path, monkeypatch):
    store = str(tmp_path / "store")
    first = BLASCollection()
    first.add_xml(dataset_texts["protein"], name="protein")
    first.save(store)
    opened = BLASCollection.open(store)
    written = []
    original = CollectionStore.write_partition

    def tracking(self, indexed, doc_id, fingerprint):
        written.append(doc_id)
        return original(self, indexed, doc_id, fingerprint)

    monkeypatch.setattr(CollectionStore, "write_partition", tracking)
    opened.add_xml(dataset_texts["shakespeare"], name="shakespeare")
    assert written == [1]


def _manifest_partitions(store: str):
    """Map document name → referenced partition path, from the manifest."""
    with open(os.path.join(store, MANIFEST_NAME), "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return {entry["name"]: entry["partition"] for entry in payload["documents"]}


def test_remove_persists_and_deletes_the_partition_file(dataset_texts, tmp_path):
    store = str(tmp_path / "store")
    build_collection(dataset_texts).save(store)
    victim_file = _manifest_partitions(store)["protein"]
    opened = BLASCollection.open(store)
    opened.remove("protein")
    assert not os.path.exists(os.path.join(store, victim_file))
    reopened = BLASCollection.open(store)
    assert len(reopened) == len(DATASET_NAMES) - 1
    assert "protein" not in {entry["name"] for entry in reopened.documents()}


def test_removing_every_document_leaves_a_valid_empty_store(dataset_texts, tmp_path):
    store = str(tmp_path / "store")
    build_collection(dataset_texts).save(store)
    opened = BLASCollection.open(store)
    for doc_id in list(opened.doc_ids()):
        opened.remove(doc_id)
    assert opened.query("//name").count == 0
    reopened = BLASCollection.open(store)
    assert len(reopened) == 0
    assert reopened.query("//name").count == 0
    # And the empty store still accepts appends.
    reopened.add_xml(dataset_texts["protein"], name="protein")
    assert BLASCollection.open(store).query("//name").count > 0


# -- crash safety -------------------------------------------------------------------


def test_killed_append_leaves_the_old_manifest_readable(
    dataset_texts, tmp_path, monkeypatch
):
    """Crash between partition write and manifest swap → old store intact."""
    store = str(tmp_path / "store")
    first = BLASCollection()
    first.add_xml(dataset_texts["protein"], name="protein")
    first.save(store)
    baseline = first.query("//name").starts

    opened = BLASCollection.open(store)

    def crash(self, manifest):
        raise OSError("simulated crash before the manifest swap")

    monkeypatch.setattr(CollectionStore, "write_manifest", crash)
    with pytest.raises(OSError):
        opened.add_xml(dataset_texts["shakespeare"], name="shakespeare")
    monkeypatch.undo()

    # The orphan partition file exists but the manifest never moved ...
    partitions_dir = os.path.join(store, "partitions")
    referenced = set(_manifest_partitions(store).values())
    present = {f"partitions/{name}" for name in os.listdir(partitions_dir)}
    assert len(present - referenced) == 1  # the orphan from the killed append
    reopened = BLASCollection.open(store)
    assert reopened.doc_ids() == [0]
    assert reopened.query("//name").starts == baseline
    # ... and a later successful append reuses the orphan's slot cleanly.
    reopened.add_xml(dataset_texts["shakespeare"], name="shakespeare")
    assert BLASCollection.open(store).doc_ids() == [0, 1]


def test_killed_resave_leaves_the_old_store_readable(dataset_texts, tmp_path):
    """Partition names embed content fingerprints: a re-save with changed
    content writes new files, so crashing before its manifest swap leaves
    every file the old manifest references untouched."""
    store = str(tmp_path / "store")
    first = BLASCollection()
    first.add_xml(dataset_texts["protein"], name="doc")
    first.save(store)
    old_files = set(_manifest_partitions(store).values())
    baseline = BLASCollection.open(store).query("//name").starts

    changed = BLASCollection()
    changed.add_xml(dataset_texts["shakespeare"], name="doc")
    # Simulate the crash: partitions written, manifest swap never happens.
    interim = CollectionStore(store)
    for doc_id in changed.doc_ids():
        interim.write_partition(
            changed._documents[doc_id].indexed,
            doc_id,
            changed.store.partition_fingerprint(doc_id),
        )
    # The old manifest still references only intact, unmodified files.
    assert set(_manifest_partitions(store).values()) == old_files
    reopened = BLASCollection.open(store)
    assert reopened.query("//name").starts == baseline
    # Completing the save commits the new content and collects the orphans.
    changed.save(store)
    after = BLASCollection.open(store)
    assert after.query("//TITLE").count > 0
    leftover = set(os.listdir(os.path.join(store, "partitions")))
    assert leftover == {
        os.path.basename(path) for path in _manifest_partitions(store).values()
    }


def test_failed_append_rolls_back_the_in_memory_registration(
    dataset_texts, tmp_path, monkeypatch
):
    """A failed (not crashed) append must not leave memory ahead of disk:
    a later successful mutation would otherwise commit a manifest
    referencing a partition file that was never written."""
    store = str(tmp_path / "store")
    first = BLASCollection()
    first.add_xml(dataset_texts["protein"], name="protein")
    first.save(store)

    def fail(self, indexed, doc_id, fingerprint):
        raise OSError("disk full")

    monkeypatch.setattr(CollectionStore, "write_partition", fail)
    with pytest.raises(OSError):
        first.add_xml(dataset_texts["shakespeare"], name="shakespeare")
    monkeypatch.undo()

    assert first.doc_ids() == [0]
    # The next mutation succeeds and the store stays fully consistent.
    doc_id = first.add_xml(dataset_texts["shakespeare"], name="shakespeare")
    assert doc_id == 1
    reopened = BLASCollection.open(store)
    assert reopened.doc_ids() == [0, 1]
    assert reopened.query("//TITLE").count == first.query("//TITLE").count


def test_open_raises_persist_error_on_a_truncated_manifest(tmp_path):
    """Right format tag, missing fields → PersistError, not a raw KeyError."""
    store = tmp_path / "store"
    store.mkdir()
    (store / MANIFEST_NAME).write_text(
        '{"format": "blas-collection-store", "version": 1}', encoding="utf-8"
    )
    with pytest.raises(PersistError):
        BLASCollection.open(str(store))


def test_query_raises_persist_error_on_a_mistyped_partition(
    dataset_texts, tmp_path
):
    store = str(tmp_path / "store")
    fresh = BLASCollection()
    fresh.add_xml(dataset_texts["protein"], name="protein")
    fresh.save(store, partition_format="v1")
    partition = os.path.join(store, _manifest_partitions(store)["protein"])
    with open(partition, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    del payload["records"]
    with open(partition, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    opened = BLASCollection.open(store)
    with pytest.raises(PersistError):
        opened.query("//name")


def test_interrupted_manifest_write_never_corrupts_the_manifest(
    dataset_texts, tmp_path
):
    """The manifest swap goes through a temp file; the target is never partial."""
    store = str(tmp_path / "store")
    build_collection(dataset_texts).save(store)
    with open(os.path.join(store, MANIFEST_NAME), "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["version"] == FORMAT_VERSION
    leftovers = [
        name for name in os.listdir(store) if name.startswith(MANIFEST_NAME + ".")
    ]
    assert leftovers == []


# -- format validation --------------------------------------------------------------


def test_open_rejects_a_missing_store(tmp_path):
    with pytest.raises(PersistError):
        BLASCollection.open(str(tmp_path / "nowhere"))


def test_open_rejects_an_unsupported_version(dataset_texts, tmp_path):
    store = str(tmp_path / "store")
    build_collection(dataset_texts).save(store)
    manifest_path = os.path.join(store, MANIFEST_NAME)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    payload["version"] = FORMAT_VERSION + 1
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    with pytest.raises(PersistError):
        BLASCollection.open(store)


def test_open_rejects_a_foreign_json_file(tmp_path):
    store = tmp_path / "store"
    store.mkdir()
    (store / MANIFEST_NAME).write_text('{"format": "something-else"}', encoding="utf-8")
    with pytest.raises(PersistError):
        BLASCollection.open(str(store))


def test_read_partition_rejects_a_record_count_mismatch(dataset_texts, tmp_path):
    store = str(tmp_path / "store")
    fresh = BLASCollection()
    fresh.add_xml(dataset_texts["protein"], name="protein")
    fresh.save(store, partition_format="v1")
    partition = os.path.join(store, _manifest_partitions(store)["protein"])
    with open(partition, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    payload["records"] = payload["records"][:-1]
    with open(partition, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    opened = BLASCollection.open(store)
    with pytest.raises(PersistError):
        opened.query("//name")


# -- the one-document convenience ---------------------------------------------------


def test_blas_save_open_round_trip(tmp_path):
    store = str(tmp_path / "one")
    system = BLAS.from_xml(PROTEIN_SAMPLE, name="protein-sample")
    system.save(store)
    reopened = BLAS.open(store)
    query = "//protein/name"
    a = system.query(query)
    b = reopened.query(query)
    assert a.starts == b.starts
    assert a.values() == b.values()
    assert a.stats.as_dict() == b.stats.as_dict()
    assert _stable_explain(system.explain(query)) == _stable_explain(
        reopened.explain(query)
    )


def test_blas_open_refuses_a_multi_document_store(dataset_texts, tmp_path):
    store = str(tmp_path / "many")
    build_collection(dataset_texts).save(store)
    with pytest.raises(CollectionError):
        BLAS.open(store)


def test_blas_save_refuses_a_multi_document_view(dataset_texts, tmp_path):
    """A document_view of a shared collection must not persist its siblings."""
    collection = build_collection(dataset_texts)
    view = collection.document_view(0)
    with pytest.raises(CollectionError):
        view.save(str(tmp_path / "leak"))
    assert not os.path.exists(str(tmp_path / "leak"))


# -- corruption detection -----------------------------------------------------------


def test_tampered_partition_content_is_rejected_on_load(tmp_path):
    """Same record count, different bytes → the fingerprint check fires.

    Uses a small document: under 256 records the content digest samples
    every record, so any single-field edit is guaranteed detectable (for
    large documents the digest is sampled — a probabilistic, not
    cryptographic, integrity check)."""
    store = str(tmp_path / "store")
    fresh = BLASCollection()
    fresh.add_xml(PROTEIN_SAMPLE, name="protein")
    fresh.save(store, partition_format="v1")
    partition = os.path.join(store, _manifest_partitions(store)["protein"])
    with open(partition, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    payload["records"][0][5] = "TAMPERED"
    with open(partition, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    opened = BLASCollection.open(store)
    with pytest.raises(PersistError, match="fingerprint"):
        opened.query("//name")


def test_out_of_range_group_id_is_rejected_on_open(dataset_texts, tmp_path):
    store = str(tmp_path / "store")
    fresh = BLASCollection()
    fresh.add_xml(dataset_texts["protein"], name="protein")
    fresh.save(store)
    manifest_path = os.path.join(store, MANIFEST_NAME)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    for bad in (7, -1):
        payload["documents"][0]["group_id"] = bad
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(PersistError):
            BLASCollection.open(store)


def test_malformed_scheme_group_is_rejected_on_open(dataset_texts, tmp_path):
    store = str(tmp_path / "store")
    fresh = BLASCollection()
    fresh.add_xml(dataset_texts["protein"], name="protein")
    fresh.save(store)
    manifest_path = os.path.join(store, MANIFEST_NAME)
    with open(manifest_path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    payload["scheme_groups"][0] = {"tags": []}  # no height, empty vocabulary
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    with pytest.raises(PersistError):
        BLASCollection.open(store)
