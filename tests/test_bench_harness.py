"""Tests for the benchmark harness and reporting helpers."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    BenchSystem,
    build_bench_system,
    clear_cache,
    run_translator_comparison,
    time_call,
)
from repro.bench.reporting import comparison_rows, format_table, speedup_over_baseline


def test_build_bench_system_carries_the_workload():
    bench = build_bench_system("protein", scale=1)
    assert isinstance(bench, BenchSystem)
    assert set(bench.queries) == {"QP1", "QP2", "QP3"}
    assert bench.label == "protein(scale=1)"
    assert bench.query_named("QP1") is bench.queries["QP1"]


def test_auction_bench_includes_benchmark_queries():
    bench = build_bench_system("auction", scale=1)
    assert {"QA1", "Q1", "Q6"}.issubset(bench.queries)


def test_bench_systems_are_cached():
    clear_cache()
    first = build_bench_system("protein", scale=1)
    second = build_bench_system("protein", scale=1)
    assert first is second
    uncached = build_bench_system("protein", scale=1, use_cache=False)
    assert uncached is not first


def test_replication_grows_the_system():
    small = build_bench_system("protein", scale=1)
    big = build_bench_system("protein", scale=1, replicate=2)
    assert big.system.summary()["nodes"] > small.system.summary()["nodes"]
    assert big.label.endswith(",x2)")


def test_time_call_returns_best_time_and_result():
    elapsed, value = time_call(lambda: sum(range(1000)), repeats=2)
    assert value == sum(range(1000))
    assert elapsed >= 0


def test_run_translator_comparison_rows():
    bench = build_bench_system("protein", scale=1)
    rows = run_translator_comparison(
        bench, bench.query_named("QP1"), engine="memory",
        translators=["dlabel", "pushup"], repeats=1,
    )
    assert set(rows) == {"dlabel", "pushup"}
    assert rows["dlabel"]["results"] == rows["pushup"]["results"]
    assert rows["dlabel"]["elements_read"] > rows["pushup"]["elements_read"]


def test_strip_values_option_changes_the_result_count():
    bench = build_bench_system("protein", scale=1)
    query = bench.query_named("QP2")
    with_values = run_translator_comparison(
        bench, query, engine="memory", translators=["pushup"], repeats=1
    )
    without_values = run_translator_comparison(
        bench, query, engine="memory", translators=["pushup"], strip_values=True, repeats=1
    )
    assert without_values["pushup"]["results"] >= with_values["pushup"]["results"]


def test_format_table_renders_headers_rows_and_title():
    text = format_table(["name", "value"], [["a", 1.23456], ["bb", 7]], title="demo")
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "name" in lines[1] and "value" in lines[1]
    assert "1.2346" in text  # floats are rounded to four decimals
    assert "bb" in text


def test_comparison_rows_and_speedups():
    results = {
        "dlabel": {"elapsed_seconds": 2.0, "elements_read": 100},
        "pushup": {"elapsed_seconds": 0.5, "elements_read": 10},
    }
    rows = comparison_rows(results, "elements_read")
    assert rows == [["dlabel", 100], ["pushup", 10]]
    speedups = speedup_over_baseline(results)
    assert speedups["dlabel"] == pytest.approx(1.0)
    assert speedups["pushup"] == pytest.approx(4.0)


def test_experiment_driver_smoke_fig12_and_sec42():
    from repro.bench.experiments import fig12_dataset_characteristics, sec42_join_counts

    rows = fig12_dataset_characteristics()
    assert len(rows) == 3
    joins = sec42_join_counts()
    assert len(joins) == 9
    assert all(row["djoins_dlabel"] == row["tags"] - 1 for row in joins)
