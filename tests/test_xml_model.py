"""Tests for the element tree model."""

from __future__ import annotations

from repro.xmlkit.model import Document, Element, attach_attribute_nodes
from repro.xmlkit.parser import parse_string


def build_sample():
    root = Element("a")
    b = root.make_child("b", text="one")
    b.make_child("c", text="deep")
    root.make_child("b", text="two")
    root.make_child("d")
    return Document(root, name="sample")


def test_make_child_sets_parent_and_order():
    document = build_sample()
    assert [child.tag for child in document.root.children] == ["b", "b", "d"]
    assert document.root.children[0].parent is document.root


def test_iter_is_document_order():
    document = build_sample()
    assert [node.tag for node in document.iter()] == ["a", "b", "c", "b", "d"]


def test_iter_descendants_excludes_self():
    document = build_sample()
    tags = [node.tag for node in document.root.iter_descendants()]
    assert "a" not in tags
    assert tags == ["b", "c", "b", "d"]


def test_find_children_and_descendants():
    document = build_sample()
    assert len(document.root.find_children("b")) == 2
    assert len(document.root.find_children("c")) == 0
    assert len(document.root.find_descendants("c")) == 1


def test_depth_and_path():
    document = build_sample()
    c = document.root.children[0].children[0]
    assert c.depth == 3
    assert c.path_tags() == ["a", "b", "c"]
    assert c.source_path() == "/a/b/c"


def test_document_statistics():
    document = build_sample()
    assert document.count_nodes() == 5
    assert document.max_depth() == 3
    assert document.distinct_tags() == ["a", "b", "c", "d"]


def test_set_attribute_creates_and_updates_attribute_node():
    element = Element("item")
    element.set_attribute("id", "1")
    assert element.attributes == {"id": "1"}
    assert element.children[0].tag == "@id"
    assert element.children[0].text == "1"
    element.set_attribute("id", "2")
    assert element.attributes["id"] == "2"
    assert len([child for child in element.children if child.tag == "@id"]) == 1
    assert element.children[0].text == "2"


def test_constructor_attributes_are_materialised():
    element = Element("item", attributes={"id": "9", "lang": "en"})
    tags = {child.tag for child in element.children}
    assert tags == {"@id", "@lang"}


def test_attribute_nodes_come_before_element_children():
    element = Element("item")
    element.make_child("name", text="x")
    element.set_attribute("id", "1")
    assert element.children[0].tag == "@id"
    assert element.children[1].tag == "name"


def test_attach_attribute_nodes_is_idempotent():
    document = parse_string('<a id="1"><b ref="2"/></a>')
    added_first = attach_attribute_nodes(document)
    added_second = attach_attribute_nodes(document)
    assert added_first == 0  # the parser already materialised them
    assert added_second == 0
    assert len(document.root.find_descendants("@ref")) == 1


def test_value_returns_text():
    element = Element("x", text="hello")
    assert element.value() == "hello"
    assert Element("y").value() is None
