"""Unit tests for the version-keyed serialized-response result cache.

The cache's contract is byte-exact replay under a byte-exact budget:
entries charge ``len(body)``, evict LRU-first, age out whole versions
through the same bounded window the plan cache uses, and keep counters
that add up (``hits + misses == get calls``).  The staleness check is the
paper-trail for the serving guarantee: keys fold the version in, so
``stale_served`` must never move.
"""

import pytest

from repro.collection.result_cache import (
    DEFAULT_RESULT_CACHE_BYTES,
    ResultCache,
    result_key,
)
from repro.exceptions import CollectionError
from repro.planner.cache import VERSION_STATS_LIMIT, canonical_query_text


def _key(query="//a", version=1, fingerprint="fp", params=("auto",)):
    return result_key(query, params, version, fingerprint)


def test_roundtrip_returns_identical_bytes():
    cache = ResultCache(capacity_bytes=1024)
    body = b'{"count": 3}'
    assert cache.put(_key(), body, version=1)
    assert cache.get(_key(), version=1) is body
    stats = cache.cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 0
    assert stats["cached_bytes"] == len(body)
    assert stats["stale_served"] == 0


def test_key_components_all_discriminate():
    cache = ResultCache(capacity_bytes=1024)
    cache.put(_key(), b"x", version=1)
    assert cache.get(_key(query="//b")) is None
    assert cache.get(_key(version=2)) is None
    assert cache.get(_key(fingerprint="other")) is None
    assert cache.get(_key(params=("sqlite",))) is None
    assert cache.get(_key()) == b"x"


def test_lru_eviction_is_byte_accounted():
    cache = ResultCache(capacity_bytes=100)
    cache.put(_key("//a"), b"a" * 40, version=1)
    cache.put(_key("//b"), b"b" * 40, version=1)
    # Touch //a so //b is the LRU victim when //c overflows the budget.
    assert cache.get(_key("//a")) is not None
    cache.put(_key("//c"), b"c" * 40, version=1)
    assert cache.get(_key("//b")) is None
    assert cache.get(_key("//a")) is not None
    assert cache.get(_key("//c")) is not None
    stats = cache.cache_stats()
    assert stats["evictions"] == 1
    assert stats["cached_bytes"] == 80 <= stats["budget_bytes"]
    assert stats["peak_cached_bytes"] == 80


def test_replacing_an_entry_does_not_double_charge():
    cache = ResultCache(capacity_bytes=100)
    cache.put(_key(), b"x" * 60, version=1)
    cache.put(_key(), b"y" * 30, version=1)
    stats = cache.cache_stats()
    assert stats["entries"] == 1
    assert stats["cached_bytes"] == 30
    assert stats["evictions"] == 0


def test_oversize_bodies_are_rejected_not_cached():
    cache = ResultCache(capacity_bytes=10)
    assert not cache.put(_key(), b"x" * 11, version=1)
    assert cache.get(_key()) is None
    stats = cache.cache_stats()
    assert stats["oversize_rejections"] == 1
    assert stats["entries"] == 0 and stats["cached_bytes"] == 0


def test_disabled_cache_never_stores():
    for capacity in (0, None):
        cache = ResultCache(capacity_bytes=capacity)
        assert not cache.enabled
        assert not cache.put(_key(), b"x", version=1)
        assert cache.get(_key(), version=1) is None
        assert cache.cache_stats()["entries"] == 0


def test_negative_capacity_rejected():
    with pytest.raises(CollectionError):
        ResultCache(capacity_bytes=-1)


def test_old_versions_age_out_with_their_entries():
    cache = ResultCache(capacity_bytes=DEFAULT_RESULT_CACHE_BYTES)
    total = VERSION_STATS_LIMIT + 8
    for version in range(1, total + 1):
        cache.put(_key(version=version), b"x" * 10, version=version)
    stats = cache.cache_stats()
    assert stats["version_evictions"] == 8
    # The aged-out versions took their live entries with them — that is
    # the bounded-memory half of "a commit is the invalidation".
    assert stats["entries"] == VERSION_STATS_LIMIT
    assert stats["cached_bytes"] == VERSION_STATS_LIMIT * 10
    assert stats["evictions"] == 8
    evicted = stats["versions"]["evicted"]
    assert evicted["versions"] == 8 and evicted["puts"] == 8
    assert cache.get(_key(version=1), version=1) is None
    assert cache.get(_key(version=total), version=total) is not None


def test_counters_add_up_and_stale_served_stays_zero():
    cache = ResultCache(capacity_bytes=1024)
    gets = 0
    for version in (1, 2, 3):
        key = _key(version=version)
        assert cache.get(key, version=version) is None
        cache.put(key, b"v%d" % version, version=version)
        assert cache.get(key, version=version) == b"v%d" % version
        gets += 2
    stats = cache.cache_stats()
    assert stats["hits"] + stats["misses"] == gets
    assert stats["stale_served"] == 0
    assert stats["versions"][2] == {"hits": 1, "misses": 1, "puts": 1, "entries": 1}


def test_stale_detector_arms_on_version_mismatch():
    # The daemon always folds the version into the key, so this cannot
    # happen on the serving path — the detector exists to prove that, and
    # this test proves the detector itself works.
    cache = ResultCache(capacity_bytes=1024)
    key = ("shared-key-without-version",)
    cache.put(key, b"old", version=1)
    assert cache.get(key, version=2) == b"old"
    assert cache.cache_stats()["stale_served"] == 1


def test_clear_resets_everything():
    cache = ResultCache(capacity_bytes=1024)
    cache.put(_key(), b"x", version=1)
    cache.get(_key(), version=1)
    cache.clear()
    stats = cache.cache_stats()
    assert stats["entries"] == 0 and stats["cached_bytes"] == 0
    assert stats["hits"] == 0 and stats["misses"] == 0 and stats["puts"] == 0
    assert stats["versions"] == {}


def test_describe_one_liner():
    cache = ResultCache(capacity_bytes=1024)
    cache.put(_key(), b"xyz", version=1)
    text = cache.describe()
    assert text.startswith("result cache: 3 bytes cached (1024 byte budget")
    assert "stale_served=0" in text
    assert "\n" not in text
    assert "disabled" in ResultCache(capacity_bytes=0).describe()


def test_canonical_query_text_normalizes_spelling():
    # Two spellings of the same path share one canonical form — and
    # therefore one result-cache slot.
    assert canonical_query_text("//book/title") == canonical_query_text(
        "// book / title".replace(" ", "")
    )
    with pytest.raises(Exception):
        canonical_query_text("//book[")
