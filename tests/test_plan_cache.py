"""Plan-cache behavior: LRU mechanics, hits, and fingerprint invalidation."""

from __future__ import annotations

import pytest

from repro.planner.cache import PlanCache, plan_key
from repro.system import BLAS
from tests.conftest import PROTEIN_SAMPLE
from repro.exceptions import PlanError


# -- the cache itself ---------------------------------------------------------------


def test_lru_eviction_order():
    cache = PlanCache(capacity=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refreshes "a"
    cache.put("c", 3)  # evicts "b", the least recently used
    assert cache.get("b") is None
    assert cache.get("a") == 1
    assert cache.get("c") == 3
    assert cache.info()["evictions"] == 1


def test_hit_and_miss_counters():
    cache = PlanCache(capacity=4)
    assert cache.get("missing") is None
    cache.put("k", "v")
    assert cache.get("k") == "v"
    info = cache.info()
    assert info["hits"] == 1 and info["misses"] == 1 and info["size"] == 1


def test_stats_snapshot_reports_hits_misses_evictions():
    cache = PlanCache(capacity=1)
    cache.get("missing")
    cache.put("a", 1)
    cache.get("a")
    cache.put("b", 2)  # evicts "a"
    stats = cache.stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["evictions"] == 1
    assert stats["size"] == 1 and stats["capacity"] == 1
    line = cache.describe()
    assert "hits=1" in line and "misses=1" in line and "evictions=1" in line


def test_explain_surfaces_plan_cache_stats(protein_system):
    protein_system.plan_cache.clear()
    protein_system.explain("//author")  # planner path: miss, then ...
    text = protein_system.explain("//author")  # ... hit
    assert "plan cache:" in text
    assert "hits=1" in text
    # The seed path (explicit translator and engine) stays the logical plan.
    seed = protein_system.explain("//author", "pushup", "memory")
    assert "plan cache:" not in seed


def test_capacity_must_be_positive():
    with pytest.raises(PlanError):
        PlanCache(capacity=0)


def test_clear_resets_everything():
    cache = PlanCache()
    cache.put("k", "v")
    cache.get("k")
    cache.clear()
    info = cache.info()
    assert info == {"size": 0, "capacity": 128, "hits": 0, "misses": 0, "evictions": 0}


# -- system integration -------------------------------------------------------------


def test_second_plan_is_a_cache_hit(protein_system):
    protein_system.plan_cache.clear()
    first = protein_system.plan_query("//author")
    second = protein_system.plan_query("//author")
    assert not first.cache_hit
    assert second.cache_hit
    assert second.translator == first.translator and second.engine == first.engine
    assert protein_system.plan_cache.hits == 1


def test_cached_plans_reexecute_with_fresh_statistics(protein_system):
    protein_system.plan_cache.clear()
    first = protein_system.query("//protein/name")
    second = protein_system.query("//protein/name")
    assert second.planned.cache_hit
    assert second.starts == first.starts
    # A cache hit must not skip (or double-count) the storage instrumentation.
    assert second.stats.elements_read == first.stats.elements_read


def test_requested_pair_is_part_of_the_key(protein_system):
    protein_system.plan_cache.clear()
    protein_system.plan_query("//author")
    explicit = protein_system.plan_query("//author", translator="split")
    assert not explicit.cache_hit  # different requested translator, different key


def test_fingerprint_invalidates_across_documents():
    """The same query on different data can never share a plan-cache entry."""
    one = BLAS.from_xml(PROTEIN_SAMPLE)
    other = BLAS.from_xml("<ProteinDatabase><ProteinEntry><protein><name>x</name>"
                          "</protein></ProteinEntry></ProteinDatabase>")
    fp_one = one.catalog.fingerprint()
    fp_other = other.catalog.fingerprint()
    assert fp_one != fp_other
    assert plan_key("//author", "auto", "auto", fp_one) != plan_key(
        "//author", "auto", "auto", fp_other
    )


def test_fingerprint_is_stable_for_identical_content():
    one = BLAS.from_xml(PROTEIN_SAMPLE)
    two = BLAS.from_xml(PROTEIN_SAMPLE)
    assert one.catalog.fingerprint() == two.catalog.fingerprint()


def test_fingerprint_covers_text_values():
    """Structure-identical documents with different text must differ: the
    planner's statically-empty pruning depends on data values, so a plan
    cached for one must never be served to the other."""
    x = BLAS.from_xml("<r><a><b>x</b></a></r>")
    y = BLAS.from_xml("<r><a><b>y</b></a></r>")
    assert x.catalog.fingerprint() != y.catalog.fingerprint()


def test_cache_capacity_bounds_entries():
    from repro.core.indexer import index_text

    small = BLAS(index_text(PROTEIN_SAMPLE), plan_cache_size=2)
    for query in ("//author", "//year", "//title", "//name"):
        small.plan_query(query)
    assert len(small.plan_cache) == 2


# -- thread safety ------------------------------------------------------------------


def test_concurrent_get_put_clear_is_safe():
    """Hammer one small cache from many threads; counters must stay sane.

    The cache is shared across the collection fan-out thread pool, so
    get/put/clear race by design; the RLock keeps the OrderedDict intact
    and ``hits + misses`` equal to the number of ``get`` calls.
    """
    import threading

    from repro.planner.cache import PlanCache

    cache = PlanCache(capacity=8)
    gets_per_thread = 400
    thread_count = 8
    errors = []
    barrier = threading.Barrier(thread_count)

    def worker(seed: int) -> None:
        try:
            barrier.wait()
            for i in range(gets_per_thread):
                key = ("q%d" % ((seed * 31 + i) % 24), "auto", "auto", "fp")
                if cache.get(key) is None:
                    cache.put(key, ("plan", seed, i))
                if i % 97 == 0:
                    cache.stats()
                if seed == 0 and i == gets_per_thread // 2:
                    cache.clear()
        except Exception as error:  # pragma: no cover - only on regression
            errors.append(error)

    threads = [
        threading.Thread(target=worker, args=(seed,)) for seed in range(thread_count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    snapshot = cache.info()
    assert snapshot["size"] <= cache.capacity
    # clear() zeroes the counters mid-run, so only the post-clear calls are
    # accounted — but hits+misses can never exceed the total gets issued.
    assert snapshot["hits"] + snapshot["misses"] <= gets_per_thread * thread_count


def test_concurrent_collection_queries_share_the_cache_safely(tmp_path):
    """Many threads querying one collection: no lost updates, no exceptions."""
    import threading

    from repro.collection import BLASCollection
    from tests.conftest import PROTEIN_SAMPLE

    collection = BLASCollection(plan_cache_size=4)
    for copy in range(3):
        collection.add_xml(PROTEIN_SAMPLE, name=f"copy-{copy}")
    queries = ("//author", "//year", "//protein/name", "//refinfo", "//title")
    errors = []

    def worker() -> None:
        try:
            for query in queries:
                assert collection.query(query).count >= 0
        except Exception as error:  # pragma: no cover - only on regression
            errors.append(error)

    threads = [threading.Thread(target=worker) for _ in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    snapshot = collection.plan_cache.info()
    assert snapshot["hits"] + snapshot["misses"] >= len(queries)
    assert len(collection.plan_cache) <= 4
