"""Tests for the exception hierarchy and the QueryResult container."""

from __future__ import annotations

import pytest

from repro.core.indexer import NodeRecord
from repro.engine.results import QueryResult
from repro.exceptions import (
    EngineError,
    LabelingError,
    PlanError,
    ReproError,
    SchemaError,
    StorageError,
    UnsupportedQueryError,
    XMLSyntaxError,
    XPathSyntaxError,
)


def test_every_library_error_derives_from_repro_error():
    for exception_type in (
        XMLSyntaxError,
        XPathSyntaxError,
        UnsupportedQueryError,
        LabelingError,
        SchemaError,
        StorageError,
        PlanError,
        EngineError,
    ):
        assert issubclass(exception_type, ReproError)


def test_xml_syntax_error_reports_offset():
    error = XMLSyntaxError("boom", position=42)
    assert "42" in str(error)
    bare = XMLSyntaxError("boom")
    assert str(bare) == "boom"


def test_callers_can_catch_the_base_class(protein_system):
    with pytest.raises(ReproError):
        protein_system.query("not an xpath at all (")


def test_query_result_defaults_and_values():
    records = [
        NodeRecord(plabel=1, start=3, end=4, level=2, tag="a", data="x"),
        NodeRecord(plabel=2, start=7, end=8, level=2, tag="a", data=None),
    ]
    result = QueryResult(starts=[3, 7], records=records, engine="memory", translator="split")
    assert result.count == 2
    assert result.values() == ["x", None]
    summary = result.summary()
    assert summary["results"] == 2
    assert summary["engine"] == "memory"
    assert result.stats.elements_read == 0


def test_parse_errors_carry_useful_messages(protein_system):
    with pytest.raises(UnsupportedQueryError) as exc_info:
        protein_system.query("/a/b[c or d]")
    assert "or" in str(exc_info.value)
    with pytest.raises(XPathSyntaxError):
        protein_system.query('/a/b = "unterminated')
