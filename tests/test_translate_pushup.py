"""Tests for the Push-Up translator (paper §4.1.2)."""

from __future__ import annotations

from repro.translate.plan import SelectionKind
from repro.translate.pushup import pushed_up_path, translate_pushup
from repro.translate.decompose import decompose
from repro.xpath.ast import Axis
from repro.xpath.parser import parse_xpath
from repro.xpath.query_tree import build_query_tree
from tests.conftest import EXAMPLE_QUERY


def plan_for(system, text):
    return system.translate(text, "pushup").plan


def test_identical_to_split_on_suffix_path_queries(protein_system):
    for text in ("//protein/name", "/ProteinDatabase/ProteinEntry/protein/name", "//author"):
        split_sql = protein_system.translate(text, "split").sql
        pushup_sql = protein_system.translate(text, "pushup").sql
        assert split_sql == pushup_sql, text


def test_branch_pieces_are_prefixed_with_the_full_path(protein_system):
    plan = plan_for(protein_system, "/ProteinDatabase/ProteinEntry[protein]/reference/refinfo")
    descriptions = {s.alias: s.description for s in plan.branches[0].selections}
    assert descriptions["T2"] == "/ProteinDatabase/ProteinEntry/protein"
    assert descriptions["T3"] == "/ProteinDatabase/ProteinEntry/reference/refinfo"


def test_pushed_pieces_become_equality_selections(protein_system):
    plan = plan_for(protein_system, "/ProteinDatabase/ProteinEntry[protein]/reference/refinfo")
    kinds = {s.alias: s.kind for s in plan.branches[0].selections}
    assert kinds["T1"] is SelectionKind.PLABEL_EQ
    assert kinds["T2"] is SelectionKind.PLABEL_EQ
    assert kinds["T3"] is SelectionKind.PLABEL_EQ


def test_descendant_cut_resets_the_prefix(protein_system):
    plan = plan_for(protein_system, EXAMPLE_QUERY)
    descriptions = {s.description for s in plan.branches[0].selections}
    # The //superfamily and //author pieces stay un-prefixed (range selections),
    # exactly as in Example 4.2's Q''2 / Q''3 before unfolding.
    assert "//superfamily" in descriptions
    assert "//author" in descriptions
    # The branch pieces that were connected by child axes are pushed up.
    assert "/ProteinDatabase/ProteinEntry/reference/refinfo/year" in descriptions
    assert "/ProteinDatabase/ProteinEntry/reference/refinfo/title" in descriptions


def test_example_query_selection_mix_matches_the_paper(protein_system):
    plan = plan_for(protein_system, EXAMPLE_QUERY)
    metrics = plan.metrics()
    assert metrics.d_joins == 6
    assert metrics.equality_selections == 5
    assert metrics.range_selections == 2


def test_figure9_pushed_subqueries(protein_system):
    # Q1 of Figure 7 (the example query without the descendant branches).
    query = (
        '/ProteinDatabase/ProteinEntry[protein]/reference/refinfo[year = "2001"]/title'
    )
    plan = plan_for(protein_system, query)
    descriptions = sorted(s.description for s in plan.branches[0].selections)
    assert descriptions == [
        "/ProteinDatabase/ProteinEntry",
        "/ProteinDatabase/ProteinEntry/protein",
        "/ProteinDatabase/ProteinEntry/reference/refinfo",
        "/ProteinDatabase/ProteinEntry/reference/refinfo/title",
        "/ProteinDatabase/ProteinEntry/reference/refinfo/year",
    ]


def test_level_gaps_match_chain_lengths(protein_system):
    plan = plan_for(protein_system, "/ProteinDatabase/ProteinEntry[protein]/reference/refinfo")
    gaps = {(j.ancestor, j.descendant): j.level_gap for j in plan.branches[0].joins}
    assert gaps == {("T1", "T2"): 1, ("T1", "T3"): 2}


def test_pushed_up_path_helper():
    tree = build_query_tree(parse_xpath("/a/b[c]//d/e"))
    decomposition = decompose(tree, break_at_descendant=True)
    by_tags = {tuple(piece.tags): piece for piece in decomposition.pieces}
    root_piece = by_tags[("a", "b")]
    branch_piece = by_tags[("c",)]
    descendant_piece = by_tags[("d", "e")]
    assert pushed_up_path(root_piece, Axis.CHILD) == (["a", "b"], True)
    assert pushed_up_path(branch_piece, Axis.CHILD) == (["a", "b", "c"], True)
    assert pushed_up_path(descendant_piece, Axis.CHILD) == (["d", "e"], False)


def test_leading_descendant_query_is_not_rooted(protein_system):
    plan = plan_for(protein_system, "//ProteinEntry[protein]/reference")
    kinds = {s.alias: s.kind for s in plan.branches[0].selections}
    # The anchor itself starts with //, so even pushed pieces stay ranges.
    assert kinds["T1"] is SelectionKind.PLABEL_RANGE
    assert kinds["T2"] is SelectionKind.PLABEL_RANGE
    assert kinds["T3"] is SelectionKind.PLABEL_RANGE


def test_results_match_split_on_every_sample_query(protein_system):
    queries = [
        EXAMPLE_QUERY,
        "/ProteinDatabase/ProteinEntry//author",
        '//refinfo[year = "2001"]/title',
        "/ProteinDatabase/ProteinEntry[protein]/reference/refinfo",
    ]
    for text in queries:
        split_result = protein_system.query(text, translator="split").starts
        pushup_result = protein_system.query(text, translator="pushup").starts
        assert split_result == pushup_result, text
