"""Unit tests for the packed columnar record storage."""

from __future__ import annotations

import pytest

from repro.core.indexer import NodeRecord
from repro.exceptions import PersistError
from repro.storage.columns import (
    HOT_COLUMNS,
    ColumnarRecords,
    WideIntColumn,
    decode_columns,
    encode_columns,
)
from repro.storage.stats import TableStatistics, fingerprint_records


def make_records(doc_id=3):
    return [
        NodeRecord(plabel=900, start=1, end=80, level=1, tag="root",
                   data=None, doc_id=doc_id),
        NodeRecord(plabel=25, start=2, end=40, level=2, tag="b",
                   data="héllo wörld", doc_id=doc_id),
        NodeRecord(plabel=7, start=3, end=10, level=3, tag="a",
                   data="", doc_id=doc_id),
        NodeRecord(plabel=25, start=41, end=79, level=2, tag="b",
                   data="x" * 300, doc_id=doc_id),
        NodeRecord(plabel=1 << 90, start=11, end=39, level=3, tag="a",
                   data=None, doc_id=doc_id),
    ]


@pytest.fixture()
def columns():
    return ColumnarRecords.from_records(make_records(), doc_id=3)


def test_records_come_back_in_sp_order(columns):
    expected = sorted(make_records(), key=NodeRecord.sort_key_sp)
    assert columns.records_sp() == expected
    assert list(columns.plabels) == [r.plabel for r in expected]


def test_records_doc_order_matches_start_order(columns):
    expected = sorted(make_records(), key=lambda r: r.start)
    assert columns.records_doc_order() == expected


def test_sd_order_is_tag_then_start(columns):
    expected = sorted(make_records(), key=NodeRecord.sort_key_sd)
    assert [columns.record(slot) for slot in columns.sd_order] == expected


def test_none_and_empty_data_are_distinct(columns):
    by_start = {r.start: r for r in columns.records_sp()}
    assert by_start[1].data is None
    assert by_start[3].data == ""
    assert by_start[2].data == "héllo wörld"


def test_wide_plabel_column_is_big_endian_fixed_width(columns):
    assert isinstance(columns.plabels, WideIntColumn)
    assert (1 << 90) in list(columns.plabels)
    # Lexicographic byte order == numeric order for fixed-width big-endian,
    # so the packed column bisects correctly.
    assert list(columns.plabels) == sorted(columns.plabels)


def test_wide_int_column_rejects_ragged_buffers():
    with pytest.raises(PersistError):
        WideIntColumn(b"12345", 2)


def test_encode_decode_round_trip(columns):
    directory, payload = encode_columns(columns)
    rebuilt = decode_columns(
        directory, payload, doc_id=3, tags=columns.tags, n=columns.n
    )
    assert rebuilt.records_sp() == columns.records_sp()


def test_encode_without_compression_round_trips(columns):
    directory, payload = encode_columns(columns, compress=False)
    assert {entry["codec"] for entry in directory} == {"raw"}
    rebuilt = decode_columns(
        directory, payload, doc_id=3, tags=columns.tags, n=columns.n
    )
    assert rebuilt.records_sp() == columns.records_sp()


def test_decode_rejects_short_payload(columns):
    directory, payload = encode_columns(columns)
    with pytest.raises(PersistError):
        decode_columns(directory, payload[:-1], doc_id=3, tags=columns.tags,
                       n=columns.n)


def test_decode_rejects_trailing_bytes(columns):
    directory, payload = encode_columns(columns)
    with pytest.raises(PersistError):
        decode_columns(directory, payload + b"x", doc_id=3, tags=columns.tags,
                       n=columns.n)


def test_decode_rejects_reordered_directory(columns):
    directory, payload = encode_columns(columns)
    with pytest.raises(PersistError):
        decode_columns(list(reversed(directory)), payload, doc_id=3,
                       tags=columns.tags, n=columns.n)


def test_sample_view_fingerprints_like_the_record_list(columns):
    view = columns.sp_view()
    assert fingerprint_records(view, name="doc") == fingerprint_records(
        columns.records_sp(), name="doc"
    )


def test_statistics_from_columns_match_record_statistics(columns):
    from_records = TableStatistics(columns.records_sp())
    from_columns = TableStatistics.from_columns(columns)
    assert from_columns.row_count == from_records.row_count
    assert from_columns.tag_counts == from_records.tag_counts
    assert from_columns.level_counts == from_records.level_counts
    assert from_columns.plabel_counts == from_records.plabel_counts
    assert from_columns.tag_level_counts == from_records.tag_level_counts
    assert from_columns.data_locations == from_records.data_locations
    assert from_columns.max_level == from_records.max_level
    assert from_columns.data_rows == from_records.data_rows


def test_column_length_mismatch_is_rejected():
    records = make_records()
    good = ColumnarRecords.from_records(records, doc_id=3)
    with pytest.raises(PersistError):
        ColumnarRecords(
            doc_id=3,
            tags=good.tags,
            plabels=good.plabels,
            starts=good.starts,
            ends=good.ends,
            levels=good.levels,
            tag_ids=good.tag_ids,
            data_nulls=good.data_nulls,
            data_ends=good.data_ends,
            data_blob=good.data_blob,
            sd_order=good.sd_order[:-1],
        )


def test_sample_view_bounds_checks_negative_indexes(columns):
    view = columns.sp_view()
    assert view[-1] == columns.record(columns.n - 1)
    with pytest.raises(IndexError):
        view[columns.n]
    with pytest.raises(IndexError):
        view[-(columns.n + 1)]


# -- per-column compression policies ------------------------------------------------


def test_hot_raw_policy_keeps_hot_columns_raw(columns):
    directory, payload = encode_columns(columns, compression="hot-raw")
    codecs = {entry["name"]: entry["codec"] for entry in directory}
    for name in sorted(HOT_COLUMNS):
        assert codecs[name] == "raw", name
    rebuilt = decode_columns(
        directory, payload, doc_id=3, tags=columns.tags, n=columns.n
    )
    assert rebuilt.records_sp() == columns.records_sp()


def test_raw_policy_stores_every_section_raw(columns):
    directory, payload = encode_columns(columns, compression="raw")
    assert {entry["codec"] for entry in directory} == {"raw"}
    rebuilt = decode_columns(
        directory, payload, doc_id=3, tags=columns.tags, n=columns.n
    )
    assert rebuilt.records_sp() == columns.records_sp()


def test_unknown_compression_policy_is_rejected(columns):
    with pytest.raises(PersistError):
        encode_columns(columns, compression="lzma")


# -- lazy decoding off a buffer (the mmap read path) --------------------------------


def test_lazy_decode_matches_eager_and_resolves_on_demand(columns):
    directory, payload = encode_columns(columns)
    lazy = decode_columns(
        directory, memoryview(payload), doc_id=3, tags=columns.tags,
        n=columns.n, lazy=True,
    )
    assert not lazy.section_resolved("plabels")
    assert not lazy.section_resolved("sd_order")
    assert lazy.records_sp() == columns.records_sp()
    assert lazy.section_resolved("plabels")
    assert [lazy.record(slot) for slot in lazy.sd_order] == [
        columns.record(slot) for slot in columns.sd_order
    ]


def test_lazy_raw_sections_are_zero_copy_views(columns):
    """The acceptance-criterion identity: a raw column decoded lazily is a
    ``memoryview`` over the *original* buffer — the bytes the vector
    kernels bisect and merge are the file's bytes, never a copy."""
    directory, payload = encode_columns(columns, compression="raw")
    lazy = decode_columns(
        directory, memoryview(payload), doc_id=3, tags=columns.tags,
        n=columns.n, lazy=True,
    )
    starts = lazy.starts
    assert isinstance(starts, memoryview)
    assert starts.obj is payload  # zero copies between buffer and column
    assert list(starts) == list(columns.starts)
    assert isinstance(lazy.data_blob, memoryview)
    assert lazy.data_blob.obj is payload
    # Mapped sections are accounted at zero heap bytes.
    assert lazy.resident_bytes() == 8 * lazy.n


def test_lazy_decode_surfaces_corruption_on_first_access(columns):
    directory, payload = encode_columns(columns)
    zlib_entries = [e for e in directory if e["codec"] == "zlib"]
    assert zlib_entries  # the 300-byte text payload deflates
    victim = zlib_entries[0]
    offset = 0
    for entry in directory:
        if entry is victim:
            break
        offset += entry["stored"]
    corrupt = bytearray(payload)
    corrupt[offset + victim["stored"] // 2] ^= 0xFF
    lazy = decode_columns(
        directory, memoryview(bytes(corrupt)), doc_id=3, tags=columns.tags,
        n=columns.n, lazy=True,
    )
    section = {
        "plabel": "plabels", "start": "starts", "end": "ends",
        "level": "levels", "tag_id": "tag_ids", "data_null": "data_nulls",
        "data_ends": "data_ends", "data_blob": "data_blob",
        "sd_order": "sd_order",
    }[victim["name"]]
    with pytest.raises(PersistError):
        getattr(lazy, section)
