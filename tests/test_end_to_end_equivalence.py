"""End-to-end equivalence: every translator and engine vs the naive evaluator.

This is the repository's main correctness net: for every dataset and every
workload query (plus a set of hand-written corner cases), all four
translators on all three engines must return exactly the node set the naive
in-memory evaluator computes.
"""

from __future__ import annotations

import pytest

from repro.core.dlabel import dlabels_for_document
from repro.datasets import queries_for_dataset
from repro.datasets.queries import BENCHMARK_QUERIES
from repro.system import BLAS
from repro.xpath.evaluator import evaluate
from repro.xpath.parser import parse_xpath

TRANSLATORS = ["dlabel", "split", "pushup", "unfold"]
ENGINES = ["memory", "twig", "vector", "sqlite"]

EXTRA_QUERIES = {
    "shakespeare": [
        "//SPEECH/LINE",
        "/PLAYS/PLAY[EPILOGUE]/TITLE",
        "//SCENE[STAGEDIR]/SPEECH/SPEAKER",
        "/PLAYS/PLAY/PERSONAE/PGROUP/PERSONA",
    ],
    "protein": [
        "//refinfo[citation]/year",
        '/ProteinDatabase/ProteinEntry[genetics/gene]/protein/name',
        "//authors/author",
        "/ProteinDatabase/ProteinEntry/reference/accinfo/xrefs/xref/db",
    ],
    "auction": [
        "//listitem//text",
        "/site/people/person[address/country]/name",
        '/site/open_auctions/open_auction[bidder/increase]/itemref',
        "//closed_auction/annotation/description",
        "/site/regions/europe/item/description//text",
    ],
}


@pytest.fixture(scope="module")
def systems(shakespeare_document, protein_dataset_document, auction_document):
    documents = {
        "shakespeare": shakespeare_document,
        "protein": protein_dataset_document,
        "auction": auction_document,
    }
    built = {}
    for name, document in documents.items():
        built[name] = (document, BLAS.from_document(document), dlabels_for_document(document))
    return built


def expected_starts(document, labels, path):
    return sorted(labels[id(node)].start for node in evaluate(document, path))


def queries_under_test(dataset):
    queries = dict(queries_for_dataset(dataset))
    for extra in EXTRA_QUERIES[dataset]:
        queries[extra] = parse_xpath(extra)
    if dataset == "auction":
        for name, text in BENCHMARK_QUERIES.items():
            queries[name] = parse_xpath(text)
    return queries


@pytest.mark.parametrize("dataset", ["shakespeare", "protein", "auction"])
@pytest.mark.parametrize("translator", TRANSLATORS)
def test_memory_engine_equals_naive_evaluation(systems, dataset, translator):
    document, system, labels = systems[dataset]
    for name, path in queries_under_test(dataset).items():
        expected = expected_starts(document, labels, path)
        result = system.query(path, translator=translator, engine="memory")
        assert result.starts == expected, (dataset, name, translator)


@pytest.mark.parametrize("dataset", ["shakespeare", "protein", "auction"])
@pytest.mark.parametrize("translator", ["dlabel", "split", "pushup"])
def test_twig_engine_equals_naive_evaluation(systems, dataset, translator):
    document, system, labels = systems[dataset]
    for name, path in queries_under_test(dataset).items():
        expected = expected_starts(document, labels, path)
        result = system.query(path, translator=translator, engine="twig")
        assert result.starts == expected, (dataset, name, translator)


@pytest.mark.parametrize("dataset", ["shakespeare", "protein", "auction"])
def test_sqlite_engine_equals_naive_evaluation(systems, dataset):
    document, system, labels = systems[dataset]
    for name, path in queries_under_test(dataset).items():
        expected = expected_starts(document, labels, path)
        for translator in ("split", "unfold"):
            result = system.query(path, translator=translator, engine="sqlite")
            assert result.starts == expected, (dataset, name, translator)


@pytest.mark.parametrize("dataset", ["shakespeare", "protein", "auction"])
def test_all_translators_return_identical_answers(systems, dataset):
    _, system, _ = systems[dataset]
    for name, path in queries_under_test(dataset).items():
        answers = {
            translator: tuple(system.query(path, translator=translator).starts)
            for translator in TRANSLATORS
        }
        assert len(set(answers.values())) == 1, (dataset, name, answers)
