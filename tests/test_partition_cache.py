"""Tests for the bounded partition cache (LRU eviction, pinning, bypass).

Covers the beyond-RAM tentpole's cache semantics: least-recently-used
eviction order, byte accounting across materialize → evict → re-fault
cycles, pinning under thread-pool fan-out (parallel and serial answers
stay byte-identical with a tiny ``cache_bytes``), the eviction/remove
path releasing file mappings before files are deleted, and v1 /
record-backed partitions bypassing the cache gracefully.
"""

from __future__ import annotations

import pytest

from repro.collection import BLASCollection
from repro.exceptions import StorageError

DOC_TEXTS = {
    "alpha.xml": (
        "<lib><book><title>alpha one</title><year>2001</year></book>"
        "<book><title>alpha two</title><year>2002</year></book></lib>"
    ),
    "beta.xml": (
        "<lib><book><title>beta one</title><year>2003</year></book>"
        "<book><title>beta two</title><year>2004</year></book>"
        "<book><title>beta three</title><year>2005</year></book></lib>"
    ),
    "gamma.xml": (
        "<lib><book><title>gamma one</title><year>2006</year></book></lib>"
    ),
}

QUERIES = ("//title", "//book[year]", "/lib/book/title")


def saved_store(tmp_path, **save_kwargs) -> str:
    collection = BLASCollection()
    for name, text in DOC_TEXTS.items():
        collection.add_xml(text, name=name)
    store = str(tmp_path / "store")
    collection.save(store, **save_kwargs)
    return store


# -- LRU eviction order -------------------------------------------------------------


def test_budget_of_one_keeps_exactly_the_last_touched_partition(tmp_path):
    """budget=1: every fault-in evicts the previous resident (LRU order)."""
    collection = BLASCollection.open(saved_store(tmp_path), cache_bytes=1)
    store = collection.store
    assert [store.is_loaded(d) for d in (0, 1, 2)] == [False, False, False]

    store.catalog_for(0)
    assert [store.is_loaded(d) for d in (0, 1, 2)] == [True, False, False]
    store.catalog_for(1)
    assert [store.is_loaded(d) for d in (0, 1, 2)] == [False, True, False]
    store.catalog_for(2)
    assert [store.is_loaded(d) for d in (0, 1, 2)] == [False, False, True]
    # Re-fault the oldest: it comes back, the newest-but-one goes.
    store.catalog_for(0)
    assert [store.is_loaded(d) for d in (0, 1, 2)] == [True, False, False]

    stats = store.cache_stats()
    assert stats["misses"] == 4  # three cold loads + one re-fault
    assert stats["evictions"] == 3
    assert stats["cached_partitions"] == 1


def test_eviction_is_least_recently_used_not_least_recently_loaded(tmp_path):
    collection = BLASCollection.open(saved_store(tmp_path), cache_bytes=None)
    store = collection.store
    # Make the cache effectively "fits two": learn real sizes first.
    sizes = [store.catalog_for(d).resident_bytes() for d in (0, 1, 2)]
    budget = sizes[0] + sizes[1] + sizes[2] // 2

    bounded = BLASCollection.open(saved_store(tmp_path / "b"), cache_bytes=budget)
    bounded.store.catalog_for(0)
    bounded.store.catalog_for(1)
    bounded.store.catalog_for(0)  # refresh doc 0 — doc 1 is now the LRU
    bounded.store.catalog_for(2)  # overflows: the victim must be doc 1
    assert bounded.store.is_loaded(0)
    assert not bounded.store.is_loaded(1)
    assert bounded.store.is_loaded(2)


# -- byte accounting across materialize / evict / re-fault --------------------------


def test_cached_bytes_track_resident_bytes_and_reset_on_refault(tmp_path):
    collection = BLASCollection.open(saved_store(tmp_path), cache_bytes=10**9)
    store = collection.store

    cold = store.catalog_for(0).resident_bytes()
    assert store.cache_stats()["cached_bytes"] == cold

    # Resolving more column state (here: the document-order permutation,
    # a plain heap list) grows the partition's accounted size on the next
    # touch — it is heap state eviction can release.
    assert store.catalog_for(0).columns().doc_order
    store.catalog_for(0)
    warm = store.cache_stats()["cached_bytes"]
    assert warm == store.catalog_for(0).resident_bytes()
    assert warm > cold

    # Evict by shrinking through a bounded reopen: after a re-fault the
    # partition is cold again — the warmed-up state was dropped cleanly.
    bounded = BLASCollection.open(saved_store(tmp_path / "b"), cache_bytes=1)
    assert bounded.store.catalog_for(0).columns().doc_order
    bounded.store.catalog_for(1)  # evicts doc 0 with its warmed-up state
    refault = bounded.store.catalog_for(0).resident_bytes()
    assert refault == cold


def test_peak_cached_bytes_is_recorded_after_enforcement(tmp_path):
    collection = BLASCollection.open(saved_store(tmp_path), cache_bytes=1)
    store = collection.store
    sizes = []
    for doc_id in (0, 1, 2):
        sizes.append(store.catalog_for(doc_id).resident_bytes())
    # Only one partition is ever resident, so the peak is the largest
    # single partition — never the sum.
    assert store.cache_stats()["peak_cached_bytes"] == max(sizes)
    assert store.cache_stats()["peak_cached_bytes"] < sum(sizes)


# -- answers are identical with and without a budget --------------------------------


@pytest.mark.parametrize("parallel", [False, True])
def test_tiny_budget_answers_match_unbounded(tmp_path, parallel):
    """Serial and thread-pool fan-out stay byte-identical under eviction
    pressure: pinned partitions are never victims mid-query."""
    store = saved_store(tmp_path)
    unbounded = BLASCollection.open(store)
    capped = BLASCollection.open(store, cache_bytes=1, workers=4)
    for query in QUERIES:
        want = unbounded.query(query, parallel=False)
        got = capped.query(query, parallel=parallel)
        assert got.starts == want.starts, query
        assert got.values() == want.values(), query
        assert got.counts_by_document() == want.counts_by_document(), query
    # The cache really was under pressure the whole time.
    assert capped.store.cache_stats()["evictions"] > 0


def test_pinned_partition_is_not_evicted(tmp_path):
    collection = BLASCollection.open(saved_store(tmp_path), cache_bytes=1)
    store = collection.store
    with store.pinned(0) as catalog:
        assert catalog.resident_bytes() is not None
        store.catalog_for(1)  # would evict doc 0 were it not pinned
        assert store.is_loaded(0)
        assert store.is_loaded(1)
    # Pin released: the next fault-in can claim doc 0 as a victim again.
    store.catalog_for(2)
    assert not store.is_loaded(0)


# -- eviction/remove release mappings before file deletion --------------------------


def test_remove_while_other_iterator_is_live(tmp_path):
    """Satellite regression: removing one document deletes its partition
    file while another partition's record iterator is mid-flight — the
    iterator is unaffected and no dangling-handle error surfaces."""
    collection = BLASCollection.open(saved_store(tmp_path), cache_bytes=1)
    stream = iter(collection.store.catalog_for(1).sp.records)
    first = next(stream)
    collection.remove("alpha.xml")  # evicts/unmaps doc 0, deletes its file
    rest = list(stream)
    assert [first] + rest == collection.store.catalog_for(1).sp.records
    assert collection.query("//title").count == 4  # beta(3) + gamma(1)


def test_remove_mapped_document_with_live_snapshot(tmp_path):
    """Removing the very document a reader still holds views into keeps
    the old snapshot readable (POSIX mappings survive unlink)."""
    collection = BLASCollection.open(saved_store(tmp_path))
    catalog = collection.store.catalog_for(1)
    columns = catalog.columns()
    before = [columns.data(slot) for slot in range(columns.n)]
    collection.remove("beta.xml")
    with pytest.raises(StorageError):
        collection.store.catalog_for(1)
    # The held snapshot still reads every payload byte.
    assert [columns.data(slot) for slot in range(columns.n)] == before


# -- v1 / record-backed partitions bypass the cache ---------------------------------


def test_v1_store_ignores_the_cache_gracefully(tmp_path):
    store = saved_store(tmp_path, partition_format="v1")
    capped = BLASCollection.open(store, cache_bytes=1)
    unbounded = BLASCollection.open(store)
    for query in QUERIES:
        assert capped.query(query).starts == unbounded.query(query).starts
    stats = capped.store.cache_stats()
    assert stats["cached_bytes"] == 0
    assert stats["cached_partitions"] == 0
    assert stats["evictions"] == 0
    # v1 partitions stay resident once loaded — nothing to re-fault.
    assert all(capped.store.is_loaded(d) for d in capped.store.doc_ids())


def test_mixed_membership_fresh_documents_bypass_the_cache(tmp_path):
    """A store-bound collection mixing mapped (opened) and record-backed
    (freshly added) partitions caches only the former."""
    collection = BLASCollection.open(saved_store(tmp_path), cache_bytes=1)
    doc_id = collection.add_xml(
        "<lib><book><title>delta</title><year>2007</year></book></lib>",
        name="delta.xml",
    )
    collection.store.catalog_for(0)
    collection.store.catalog_for(doc_id)  # record-backed: not accounted
    assert collection.store.is_loaded(0)  # so doc 0 was not evicted
    assert collection.store.cache_stats()["cached_partitions"] == 1
    assert collection.query("//title").count == 7


def test_cache_bytes_must_be_non_negative():
    with pytest.raises(StorageError):
        BLASCollection(cache_bytes=-1)
