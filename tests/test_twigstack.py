"""Tests for the holistic twig join (TwigStack) engine."""

from __future__ import annotations

import pytest

from repro.core.indexer import NodeRecord
from repro.engine.twigstack import TwigJoinEngine, TwigPattern, TwigPatternNode, TwigStack
from repro.storage.table import StorageCatalog
from repro.xpath.evaluator import evaluate
from repro.xpath.parser import parse_xpath
from tests.conftest import EXAMPLE_QUERY


def record(tag, start, end, level):
    return NodeRecord(plabel=0, start=start, end=end, level=level, tag=tag)


def build_pattern(streams, edges, return_name):
    """streams: name -> records; edges: (parent, child, gap)."""
    nodes = {name: TwigPatternNode(name=name, stream=sorted(stream, key=lambda r: r.start))
             for name, stream in streams.items()}
    children = set()
    for parent, child, gap in edges:
        nodes[child].level_gap = gap
        nodes[parent].add_child(nodes[child])
        children.add(child)
    root = next(name for name in nodes if name not in children)
    return TwigPattern(root=nodes[root], return_name=return_name)


# Document: a(1,14,1)[ b(2,7,2)[ c(3,4,3) d(5,6,3) ]  b(8,13,2)[ c(9,10,3) ] ]
DOC = {
    "a": [record("a", 1, 14, 1)],
    "b": [record("b", 2, 7, 2), record("b", 8, 13, 2)],
    "c": [record("c", 3, 4, 3), record("c", 9, 10, 3)],
    "d": [record("d", 5, 6, 3)],
}


def test_path_pattern_produces_path_solutions():
    pattern = build_pattern(
        {"A": DOC["a"], "B": DOC["b"], "C": DOC["c"]},
        [("A", "B", None), ("B", "C", None)],
        return_name="C",
    )
    matches = TwigStack(pattern).matches()
    returned = sorted(match["C"].start for match in matches)
    assert returned == [3, 9]


def test_twig_pattern_joins_both_branches():
    pattern = build_pattern(
        {"B": DOC["b"], "C": DOC["c"], "D": DOC["d"]},
        [("B", "C", None), ("B", "D", None)],
        return_name="B",
    )
    matches = TwigStack(pattern).matches()
    # Only the first b has both a c and a d below it.
    assert sorted({match["B"].start for match in matches}) == [2]


def test_level_gap_filters_grandchildren():
    pattern = build_pattern(
        {"A": DOC["a"], "C": DOC["c"]},
        [("A", "C", 1)],
        return_name="C",
    )
    assert TwigStack(pattern).matches() == []
    pattern2 = build_pattern(
        {"A": DOC["a"], "C": DOC["c"]},
        [("A", "C", 2)],
        return_name="C",
    )
    assert len(TwigStack(pattern2).matches()) == 2


def test_empty_stream_produces_no_matches():
    pattern = build_pattern(
        {"A": DOC["a"], "X": []},
        [("A", "X", None)],
        return_name="A",
    )
    assert TwigStack(pattern).matches() == []


def test_skewed_streams_where_one_branch_exhausts_early():
    # The d stream has a single early element; c elements keep arriving under
    # later b elements and must still produce (a, c) path solutions.
    pattern = build_pattern(
        {"A": DOC["a"], "B": DOC["b"], "C": DOC["c"]},
        [("A", "B", None), ("A", "C", None)],
        return_name="C",
    )
    matches = TwigStack(pattern).matches()
    assert sorted({match["C"].start for match in matches}) == [3, 9]


def test_pattern_node_helpers():
    node = TwigPatternNode(name="X", stream=DOC["c"])
    assert not node.exhausted()
    assert node.head().start == 3
    node.advance()
    node.advance()
    assert node.exhausted()
    assert node.is_leaf()


@pytest.mark.parametrize("translator", ["dlabel", "split", "pushup"])
def test_twig_engine_matches_naive_evaluator(
    protein_system, protein_document, translator
):
    from repro.core.dlabel import dlabels_for_document

    labels = dlabels_for_document(protein_document)
    for text in (
        "//protein/name",
        "/ProteinDatabase/ProteinEntry//author",
        "/ProteinDatabase/ProteinEntry[protein]/reference/refinfo",
        EXAMPLE_QUERY,
    ):
        expected = sorted(
            labels[id(node)].start for node in evaluate(protein_document, parse_xpath(text))
        )
        result = protein_system.query(text, translator=translator, engine="twig")
        assert result.starts == expected, (translator, text)


def test_twig_engine_counts_stream_elements(protein_system):
    result = protein_system.query("//protein/name", translator="dlabel", engine="twig")
    blas = protein_system.query("//protein/name", translator="pushup", engine="twig")
    assert result.stats.elements_read > blas.stats.elements_read
    assert result.starts == blas.starts


def test_selection_only_plan_bypasses_the_twig_join(protein_system):
    result = protein_system.query("//author", translator="pushup", engine="twig")
    assert result.count == 4
    assert result.stats.djoins_executed == 0


def test_unfold_union_plans_also_run_on_the_twig_engine(protein_system):
    result = protein_system.query(EXAMPLE_QUERY, translator="unfold", engine="twig")
    baseline = protein_system.query(EXAMPLE_QUERY, translator="dlabel", engine="twig")
    assert result.starts == baseline.starts
