"""HTTP API golden tests for the query daemon.

Every endpoint gets a golden-response test, and every failure class gets
an error test asserting both the status code and the one-line JSON body:
bad queries and parameters are 400, unknown endpoints/documents 404,
over-budget plans 422, corrupt stores 500.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.collection import BLASCollection
from repro.server import DaemonServer

DOC_A = (
    "<lib><book><title>alpha</title></book>"
    "<book><title>beta</title></book></lib>"
)
DOC_B = "<lib><book><title>gamma</title></book></lib>"


def _request(url, data=None):
    """Return (status, raw-bytes, parsed-json) without raising on 4xx/5xx."""
    request = urllib.request.Request(url, data=data)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            raw = response.read()
            return response.status, raw, json.loads(raw.decode("utf-8"))
    except urllib.error.HTTPError as error:
        raw = error.read()
        return error.code, raw, json.loads(raw.decode("utf-8"))


@pytest.fixture
def serve(tmp_path):
    """Factory: start a daemon over a freshly built two-document store."""
    started = []

    def factory(**kwargs):
        store = str(tmp_path / "store")
        collection = BLASCollection()
        collection.add_xml(DOC_A, name="a")
        collection.add_xml(DOC_B, name="b")
        collection.save(store)
        server = DaemonServer(BLASCollection.open(store), **kwargs)
        server.start()
        started.append(server)
        return server

    yield factory
    for server in started:
        server.stop()


# -- golden responses ---------------------------------------------------------------


def test_healthz_golden(serve):
    server = serve()
    status, raw, payload = _request(server.url + "/healthz")
    assert status == 200
    assert payload == {"status": "ok", "version": 2, "documents": 2}
    assert b"\n" not in raw


def test_query_golden(serve):
    # serial=1 pins `parallel` (the default is machine-dependent: fan-out
    # engages only when multiple workers are available).
    server = serve()
    status, raw, payload = _request(server.url + "/query?q=//book/title&serial=1")
    assert status == 200
    assert b"\n" not in raw
    assert payload.pop("elapsed_ms") >= 0.0
    assert payload == {
        "version": 2,
        "query": "//book/title",
        "count": 3,
        "translator": "pushup",
        "engine": "vector",
        "parallel": False,
        "elements_read": 3,
        "counts_by_document": {"0": 2, "1": 1},
        "records": [
            {"doc_id": 0, "tag": "title", "start": 3, "level": 3, "data": "alpha"},
            {"doc_id": 0, "tag": "title", "start": 8, "level": 3, "data": "beta"},
            {"doc_id": 1, "tag": "title", "start": 3, "level": 3, "data": "gamma"},
        ],
    }


def test_query_matches_single_threaded_library_run(serve, tmp_path):
    server = serve()
    library = BLASCollection.open(str(tmp_path / "store"))
    expected = library.query("//book/title", parallel=False)
    _, _, payload = _request(server.url + "/query?q=//book/title&serial=1")
    assert payload["parallel"] is False
    assert payload["count"] == expected.count
    assert payload["elements_read"] == expected.stats.elements_read
    assert [
        (r["doc_id"], r["tag"], r["start"], r["level"], r["data"])
        for r in payload["records"]
    ] == [(r.doc_id, r.tag, r.start, r.level, r.data) for r in expected.records]


def test_query_limit_and_count_params(serve):
    server = serve()
    # `limit` truncates the record stream; `count` stays the total match
    # count (mirroring the library semantics).
    _, _, limited = _request(server.url + "/query?q=//book/title&limit=1")
    assert limited["count"] == 3 and len(limited["records"]) == 1
    _, _, counted = _request(server.url + "/query?q=//book/title&count=1")
    assert counted["count"] == 3 and counted["records"] == []


def test_explain_golden(serve):
    server = serve()
    status, raw, payload = _request(server.url + "/explain?q=//book/title")
    assert status == 200
    assert b"\n" not in raw  # newlines in the text are JSON-escaped
    assert payload["version"] == 2
    assert payload["explain"].startswith("SNAPSHOT EXPLAIN")
    assert "version=2" in payload["explain"]


def test_stats_reports_server_and_collection(serve):
    server = serve()
    _request(server.url + "/query?q=//book/title")
    _request(server.url + "/query?q=/lib(")  # one failure
    status, _, payload = _request(server.url + "/stats")
    assert status == 200
    assert payload["version"] == 2
    assert payload["server"]["requests"]["query"] == 2
    assert payload["server"]["errors"] == 1
    assert payload["server"]["requests_total"] == 2
    assert payload["collection"]["documents"] == 2
    assert payload["collection"]["version"] == 2


def test_add_and_remove_bump_the_version(serve):
    server = serve()
    body = json.dumps({"xml": DOC_B, "name": "c"}).encode("utf-8")
    status, _, added = _request(server.url + "/add", data=body)
    assert status == 200
    assert added == {"version": 3, "doc_id": 2, "name": "c"}
    _, _, answer = _request(server.url + "/query?q=//book/title")
    assert answer["count"] == 4 and answer["version"] == 3
    status, _, removed = _request(
        server.url + "/remove", data=json.dumps({"ref": "c"}).encode("utf-8")
    )
    assert status == 200
    assert removed == {"version": 4, "removed": 2}
    _, _, answer = _request(server.url + "/query?q=//book/title")
    assert answer["count"] == 3 and answer["version"] == 4


# -- error responses ----------------------------------------------------------------


@pytest.mark.parametrize(
    ("path", "status", "message"),
    [
        ("/query", 400, "missing required parameter 'q'"),
        ("/explain", 400, "missing required parameter 'q'"),
        ("/query?q=//book/title&limit=soon", 400,
         "parameter 'limit' must be an integer, got 'soon'"),
        ("/query?q=//book/title&count=maybe", 400,
         "parameter 'count' must be a boolean, got 'maybe'"),
        ("/query?q=//book/title&plan_budget_ms=fast", 400,
         "parameter 'plan_budget_ms' must be a number, got 'fast'"),
        ("/nope", 404, "unknown endpoint '/nope'"),
    ],
)
def test_request_errors_are_one_line_json(serve, path, status, message):
    server = serve()
    got_status, raw, payload = _request(server.url + path)
    assert got_status == status
    assert payload == {"error": message}
    assert b"\n" not in raw


def test_bad_xpath_is_400(serve):
    server = serve()
    status, raw, payload = _request(server.url + "/query?q=//book[")
    assert status == 400
    assert b"\n" not in raw
    assert "error" in payload and payload["error"] == " ".join(payload["error"].split())


def test_unknown_engine_and_translator_are_400(serve):
    server = serve()
    status, _, _ = _request(server.url + "/query?q=//book&engine=warp")
    assert status == 400
    status, _, _ = _request(server.url + "/query?q=//book&translator=warp")
    assert status == 400


def test_remove_unknown_document_is_404(serve):
    server = serve()
    status, _, payload = _request(
        server.url + "/remove", data=json.dumps({"ref": "ghost"}).encode("utf-8")
    )
    assert status == 404
    assert "ghost" in payload["error"]


@pytest.mark.parametrize(
    "body",
    [b"not json", b"[1, 2]", json.dumps({"xml": 7}).encode("utf-8"),
     json.dumps({}).encode("utf-8")],
)
def test_add_rejects_malformed_bodies(serve, body):
    server = serve()
    status, raw, payload = _request(server.url + "/add", data=body)
    assert status == 400
    assert b"\n" not in raw and "error" in payload


def test_add_rejects_bad_xml_with_400(serve):
    server = serve()
    body = json.dumps({"xml": "<open><unclosed>"}).encode("utf-8")
    status, _, payload = _request(server.url + "/add", data=body)
    assert status == 400 and "error" in payload


def test_over_budget_plan_is_422(serve):
    server = serve(max_plan_cost=0.0)
    status, raw, payload = _request(server.url + "/query?q=//book/title")
    assert status == 422
    assert b"\n" not in raw
    assert payload["error"].startswith("plan over budget: estimated ")
    assert payload["error"].endswith("exceeds max_plan_cost=0")


def test_corrupt_store_is_500(serve, tmp_path):
    server = serve()
    # Truncate a partition file out from under the (lazily loaded) store.
    store = tmp_path / "store"
    victims = sorted((store / "partitions").glob("doc-00000-*.blas"))
    assert victims
    victims[0].write_bytes(b"not a partition")
    status, raw, payload = _request(server.url + "/query?q=//book/title")
    assert status == 500
    assert b"\n" not in raw and "error" in payload
    # The daemon survives: healthz still answers.
    status, _, payload = _request(server.url + "/healthz")
    assert status == 200 and payload["status"] == "ok"


def test_responses_are_http11_with_content_length(serve):
    server = serve()
    request = urllib.request.Request(server.url + "/healthz")
    with urllib.request.urlopen(request, timeout=10) as response:
        assert response.headers["Content-Type"] == "application/json"
        assert int(response.headers["Content-Length"]) == len(response.read())
