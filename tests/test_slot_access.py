"""Unit tests of the single slot-range access path.

Both the record-scan operators (``select_plabel_range``/``select_tag``)
and the vectorized ``vector_select`` resolve through one implementation —
:meth:`NodeTable.plabel_slot_access` / :meth:`NodeTable.tag_slot_access`
returning a :class:`SlotRangeAccess` — so the element/page/lookup counters
the two engines report cannot diverge by construction.  These tests pin
down that single path directly: slot bounds, counter math, record- vs
column-backed parity, and the clustered-to-packed slot mapping used by the
vector engine.
"""

from __future__ import annotations

import pytest

from repro.storage.columns import ColumnarPartition
from repro.storage.pages import PageLayout
from repro.storage.stats import AccessStatistics
from repro.storage.table import SlotRangeAccess, StorageCatalog
from repro.translate.plan import SelectionKind, SelectionSpec
from repro.planner.physical import ExecutionContext, vector_select


@pytest.fixture()
def catalog(protein_indexed):
    return StorageCatalog(protein_indexed, page_layout=PageLayout(records_per_page=10))


# -- SlotRangeAccess value semantics ------------------------------------------------


def test_contiguous_access_counts_inclusive_slots():
    access = SlotRangeAccess.contiguous(3, 7, pages=2)
    assert access.is_contiguous
    assert access.elements == 5
    assert access.pages == 2
    assert list(access.clustered_slots()) == [3, 4, 5, 6, 7]


def test_empty_contiguous_access_is_zero():
    access = SlotRangeAccess.contiguous(0, -1, pages=0)
    assert access.elements == 0
    assert access.pages == 0
    assert list(access.clustered_slots()) == []


def test_scattered_access_counts_explicit_slots():
    access = SlotRangeAccess.scattered([2, 5, 9], pages=3)
    assert not access.is_contiguous
    assert access.elements == 3
    assert list(access.clustered_slots()) == [2, 5, 9]


# -- plabel access on the SP cluster ------------------------------------------------


def test_sp_plabel_access_matches_brute_force(catalog, protein_indexed):
    scheme = protein_indexed.scheme
    interval = scheme.suffix_path_interval(["refinfo", "year"])
    access = catalog.sp.plabel_slot_access(interval.p1, interval.p2)
    expected = [
        record for record in catalog.sp.records
        if interval.p1 <= record.plabel <= interval.p2
    ]
    assert access.is_contiguous
    assert access.elements == len(expected) > 0
    assert access.pages == catalog.sp.pages.pages_for_range(access.first, access.last)
    assert catalog.sp.access_rows(access) == expected


def test_sp_plabel_access_empty_range(catalog):
    domain = catalog.scheme.domain
    access = catalog.sp.plabel_slot_access(domain + 10, domain + 20)
    assert access.elements == 0
    assert access.pages == 0
    assert catalog.sp.access_rows(access) == []


# -- plabel access on the SD cluster (scattered) ------------------------------------


def test_sd_plabel_access_is_scattered_and_exact(catalog, protein_indexed):
    scheme = protein_indexed.scheme
    interval = scheme.suffix_path_interval(["refinfo", "year"])
    access = catalog.sd.plabel_slot_access(interval.p1, interval.p2)
    scanned = catalog.sd.access_rows(access)
    assert not access.is_contiguous
    assert access.elements == len(scanned)
    assert access.pages == catalog.sd.pages.pages_for_scattered(access.elements)
    assert sorted(r.plabel for r in scanned) == sorted(
        record.plabel
        for record in catalog.sp.records
        if interval.p1 <= record.plabel <= interval.p2
    )


# -- tag access ---------------------------------------------------------------------


def test_sd_tag_access_is_the_contiguous_cluster(catalog):
    access = catalog.sd.tag_slot_access("author")
    scanned = catalog.sd.access_rows(access)
    assert access.is_contiguous
    assert {record.tag for record in scanned} == {"author"}
    assert access.elements == sum(
        1 for record in catalog.sd.records if record.tag == "author"
    )


def test_sd_missing_tag_access_is_empty(catalog):
    access = catalog.sd.tag_slot_access("nonexistent")
    assert access.elements == 0
    assert access.pages == 0
    assert catalog.sd.access_rows(access) == []


def test_sp_tag_access_is_scattered(catalog):
    access = catalog.sp.tag_slot_access("author")
    scanned = catalog.sp.access_rows(access)
    assert not access.is_contiguous
    assert {record.tag for record in scanned} == {"author"}
    assert access.pages == catalog.sp.pages.pages_for_scattered(access.elements)


def test_wildcard_tag_access_is_the_whole_table(catalog):
    for table in (catalog.sp, catalog.sd):
        for tag in (None, "*"):
            access = table.tag_slot_access(tag)
            assert access.is_contiguous
            assert access.elements == len(table)
            assert access.pages == table.total_pages


# -- record-backed vs column-backed parity ------------------------------------------


def _column_catalog(catalog: StorageCatalog) -> StorageCatalog:
    """A purely column-backed catalog over the same packed columns."""
    partition = ColumnarPartition(
        columns=catalog.columns(),
        scheme=catalog.scheme,
        schema=catalog.schema,
        name="columnar-twin",
        source_size_bytes=0,
        fingerprint=catalog.fingerprint(),
    )
    return StorageCatalog.from_columns(
        partition, page_layout=PageLayout(records_per_page=10)
    )


def test_column_backed_plabel_access_matches_record_backed(catalog, protein_indexed):
    columnar = _column_catalog(catalog)
    scheme = protein_indexed.scheme
    for steps in (["refinfo", "year"], ["protein", "name"], ["author"]):
        interval = scheme.suffix_path_interval(steps)
        for source in ("sp", "sd"):
            record_access = catalog.table_for(source).plabel_slot_access(
                interval.p1, interval.p2
            )
            column_access = columnar.table_for(source).plabel_slot_access(
                interval.p1, interval.p2
            )
            assert record_access == column_access


def test_column_backed_tag_access_matches_record_backed(catalog):
    columnar = _column_catalog(catalog)
    for tag in ("author", "year", "nonexistent", None):
        for source in ("sp", "sd"):
            record_access = catalog.table_for(source).tag_slot_access(tag)
            column_access = columnar.table_for(source).tag_slot_access(tag)
            assert record_access == column_access


# -- the packed mapping used by the vector engine -----------------------------------


def test_packed_selection_materializes_the_same_records(catalog, protein_indexed):
    columns = catalog.columns()
    scheme = protein_indexed.scheme
    interval = scheme.suffix_path_interval(["refinfo", "year"])
    for source in ("sp", "sd"):
        table = catalog.table_for(source)
        access = table.plabel_slot_access(interval.p1, interval.p2)
        packed = table.packed_selection(access, columns)
        assert packed.materialize() == table.access_rows(access)


def test_packed_tag_selection_materializes_the_same_records(catalog):
    columns = catalog.columns()
    for source in ("sp", "sd"):
        table = catalog.table_for(source)
        for tag in ("author", "nonexistent", None):
            access = table.tag_slot_access(tag)
            packed = table.packed_selection(access, columns)
            assert packed.materialize() == table.access_rows(access)


# -- both engines report the one access path's counters -----------------------------


@pytest.mark.parametrize("source", ["sp", "sd"])
def test_record_and_vector_selection_counters_are_the_same_numbers(
    catalog, protein_indexed, source
):
    """The counters come from one SlotRangeAccess, whichever engine asks."""
    scheme = protein_indexed.scheme
    interval = scheme.suffix_path_interval(["refinfo", "year"])
    table = catalog.table_for(source)

    row_stats = AccessStatistics()
    table.select_plabel_range(interval.p1, interval.p2, row_stats, alias="T1")

    selection = SelectionSpec(
        alias="T1",
        kind=SelectionKind.PLABEL_RANGE,
        plabel_low=interval.p1,
        plabel_high=interval.p2,
        source=source,
        description="//refinfo/year",
    )
    vec_stats = AccessStatistics()
    ctx = ExecutionContext(catalog=catalog, stats=vec_stats)
    vector_select(selection, ctx)

    assert vec_stats.elements_read == row_stats.elements_read
    assert vec_stats.pages_read == row_stats.pages_read
    assert vec_stats.index_lookups == row_stats.index_lookups


def test_tag_selection_counters_match_across_engines(catalog):
    row_stats = AccessStatistics()
    catalog.sd.select_tag("author", row_stats, alias="T1")

    selection = SelectionSpec(
        alias="T1", kind=SelectionKind.TAG, tag="author", source="sd",
        description="author",
    )
    vec_stats = AccessStatistics()
    ctx = ExecutionContext(catalog=catalog, stats=vec_stats)
    vector_select(selection, ctx)

    assert vec_stats.elements_read == row_stats.elements_read
    assert vec_stats.pages_read == row_stats.pages_read
    assert vec_stats.index_lookups == row_stats.index_lookups
