"""Tests for the synthetic dataset generators and replication."""

from __future__ import annotations

import pytest

from repro.datasets import build_dataset, replicate_document
from repro.datasets.auction import generate_auction
from repro.datasets.protein import generate_protein
from repro.datasets.shakespeare import PUBLIC_PLACE_TITLE, generate_shakespeare
from repro.xmlkit.schema import extract_schema
from repro.xpath.evaluator import evaluate
from repro.xpath.parser import parse_xpath
from repro.exceptions import DatasetError


def count(document, text):
    return len(evaluate(document, parse_xpath(text)))


def test_build_dataset_rejects_unknown_names():
    with pytest.raises(DatasetError):
        build_dataset("imdb")


def test_generators_are_deterministic_for_a_seed():
    first = generate_auction(scale=1, seed=3)
    second = generate_auction(scale=1, seed=3)
    different = generate_auction(scale=1, seed=4)
    assert first.count_nodes() == second.count_nodes()
    assert [n.tag for n in first.iter()] == [n.tag for n in second.iter()]
    assert first.count_nodes() != different.count_nodes() or [
        n.text for n in first.iter()
    ] != [n.text for n in different.iter()]


def test_scale_grows_the_documents():
    small = generate_protein(scale=1)
    large = generate_protein(scale=2)
    assert large.count_nodes() > small.count_nodes()


def test_shakespeare_structure(shakespeare_document):
    assert shakespeare_document.root.tag == "PLAYS"
    assert count(shakespeare_document, "/PLAYS/PLAY/ACT/SCENE/SPEECH/LINE") > 0
    assert count(shakespeare_document, "/PLAYS/PLAY/EPILOGUE//LINE/STAGEDIR") > 0
    assert count(shakespeare_document, f'/PLAYS/PLAY/ACT/SCENE[TITLE = "{PUBLIC_PLACE_TITLE}"]//LINE') > 0
    assert len(shakespeare_document.distinct_tags()) == 19


def test_protein_structure(protein_dataset_document):
    assert protein_dataset_document.root.tag == "ProteinDatabase"
    assert count(protein_dataset_document, "/ProteinDatabase/ProteinEntry/protein/name") > 0
    assert count(
        protein_dataset_document, '/ProteinDatabase/ProteinEntry//authors/author = "Daniel, M."'
    ) > 0
    assert count(
        protein_dataset_document,
        "/ProteinDatabase/ProteinEntry[reference/refinfo[citation and year]]/protein/name",
    ) > 0
    # The running example of the paper's introduction also has matches.
    assert count(
        protein_dataset_document,
        '/ProteinDatabase/ProteinEntry[protein//superfamily = "cytochrome c"]'
        '/reference/refinfo[//author = "Evans, M.J." and year = "2001"]/title',
    ) > 0


def test_auction_structure(auction_document):
    assert auction_document.root.tag == "site"
    assert count(auction_document, "//category/description/parlist/listitem") > 0
    assert count(auction_document, "/site/regions//item/description") > 0
    assert count(auction_document, "/site/regions/asia/item[shipping]/description") > 0
    assert auction_document.max_depth() >= 12


def test_auction_schema_is_recursive_and_protein_is_not(auction_document, protein_dataset_document):
    assert extract_schema(auction_document).is_recursive()
    assert not extract_schema(protein_dataset_document).is_recursive()


def test_auction_benchmark_queries_have_matches(auction_document):
    from repro.datasets.queries import BENCHMARK_QUERIES

    for name, text in BENCHMARK_QUERIES.items():
        assert count(auction_document, text) > 0, name


def test_replicate_document_multiplies_children(auction_document):
    replicated = replicate_document(auction_document, 3)
    assert replicated.root.tag == auction_document.root.tag
    assert len(replicated.root.children) == 3 * len(auction_document.root.children)
    assert replicated.max_depth() == auction_document.max_depth()
    assert replicated.distinct_tags() == auction_document.distinct_tags()


def test_replicate_scales_query_results_linearly(protein_dataset_document):
    single = count(protein_dataset_document, "/ProteinDatabase/ProteinEntry/protein/name")
    replicated = replicate_document(protein_dataset_document, 4)
    assert count(replicated, "/ProteinDatabase/ProteinEntry/protein/name") == 4 * single


def test_replicate_rejects_zero(auction_document):
    with pytest.raises(DatasetError):
        replicate_document(auction_document, 0)


def test_replicated_copy_is_independent(protein_dataset_document):
    replicated = replicate_document(protein_dataset_document, 2)
    original_first = protein_dataset_document.root.children[0]
    copy_first = replicated.root.children[0]
    assert original_first is not copy_first
    copy_first.tag = "Mutated"
    assert protein_dataset_document.root.children[0].tag == "ProteinEntry"


def test_replicate_preserves_attributes(auction_document):
    replicated = replicate_document(auction_document, 2)
    items = [node for node in replicated.iter() if node.tag == "item"]
    assert all("id" in item.attributes for item in items)
    attribute_nodes = [node for node in replicated.iter() if node.tag == "@id"]
    assert attribute_nodes


def test_generated_sizes_are_reported(shakespeare_document):
    from repro.core.indexer import index_document

    indexed = index_document(shakespeare_document)
    assert indexed.source_size_bytes > 10_000
