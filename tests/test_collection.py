"""Tests for the multi-document collection layer.

Covers the acceptance criteria of the collection tentpole: doc_id plumbing
end to end, collection answers identical to independent single-document
systems, byte-identical parallel vs serial fan-out, scheme sharing, plan
caching keyed on collection fingerprints, and the thin BLAS view.
"""

from __future__ import annotations

import pytest

from repro.collection import BLASCollection
from repro.datasets import build_dataset
from repro.exceptions import CollectionError, SchemaError, StorageError
from repro.storage.table import PartitionedCatalog
from repro.system import BLAS
from repro.xmlkit.writer import document_to_string
from tests.conftest import PROTEIN_SAMPLE

DOC_A = """
<lib>
  <shelf id="s1">
    <book><title>Alpha</title><author>Ann</author></book>
    <book><title>Beta</title><author>Bob</author></book>
  </shelf>
</lib>
"""

DOC_B = """
<lib>
  <shelf id="s2">
    <book><title>Gamma</title><author>Ann</author></book>
  </shelf>
  <book><title>Delta</title><author>Dee</author></book>
</lib>
"""

DOC_C = """
<lib>
  <book><title>Epsilon</title><author>Eve</author></book>
  <shelf id="s3">
    <book><title>Zeta</title><author>Zed</author></book>
    <book><title>Eta</title><author>Eve</author></book>
  </shelf>
</lib>
"""

LIBRARY = {"a": DOC_A, "b": DOC_B, "c": DOC_C}

#: ``//a//b``-style and friends, exercised across the whole suite.
LIBRARY_QUERIES = (
    "//book/title",
    "//shelf//author",
    "//lib//book[author]/title",
    '//book[author = "Ann"]/title',
    "//shelf[@id]//title",
)


@pytest.fixture()
def library():
    collection = BLASCollection()
    for name, text in LIBRARY.items():
        collection.add_xml(text, name=name)
    return collection


# -- membership & doc_id plumbing ---------------------------------------------------


def test_doc_ids_are_assigned_in_add_order(library):
    assert library.doc_ids() == [0, 1, 2]
    assert [entry["name"] for entry in library.documents()] == ["a", "b", "c"]


def test_doc_id_round_trips_through_indexing_and_storage(library):
    for doc_id in library.doc_ids():
        entry = library.entry(doc_id)
        # every indexed record is stamped ...
        assert {record.doc_id for record in entry.indexed.records} == {doc_id}
        # ... and both clustered layouts preserve the stamp.
        assert {record.doc_id for record in entry.catalog.sp.records} == {doc_id}
        assert {record.doc_id for record in entry.catalog.sd.records} == {doc_id}


def test_doc_id_round_trips_into_query_results(library):
    result = library.query("//book/title")
    assert {record.doc_id for record in result.records} == {0, 1, 2}
    for document_result in result.per_document:
        assert {
            record.doc_id for record in document_result.result.records
        } == {document_result.doc_id}


def test_results_merge_in_doc_id_then_document_order(library):
    result = library.query("//book/title")
    assert result.starts == sorted(result.starts)
    # Document order within each doc: Alpha, Beta | Gamma, Delta | Epsilon, Zeta, Eta.
    assert result.values() == [
        "Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta", "Eta",
    ]


def test_counts_by_document_includes_zero_hit_documents(library):
    result = library.query('//book[author = "Dee"]/title')
    assert result.counts_by_document() == {0: 0, 1: 1, 2: 0}


def test_remove_by_name_and_by_doc_id(library):
    assert library.remove("b") == 1
    assert library.doc_ids() == [0, 2]
    assert library.remove(0) == 0
    assert library.doc_ids() == [2]
    with pytest.raises(CollectionError):
        library.remove("b")
    with pytest.raises(CollectionError):
        library.remove(0)


def test_query_on_empty_collection_returns_empty_result():
    """An empty collection is valid: queries answer with zero results."""
    result = BLASCollection().query("//a")
    assert result.count == 0
    assert result.records == []
    assert result.counts_by_document() == {}


def test_removing_the_last_document_leaves_a_queryable_collection(library):
    for doc_id in list(library.doc_ids()):
        library.remove(doc_id)
    assert len(library) == 0
    result = library.query("//book/title")
    assert result.count == 0
    assert "documents=0" in library.explain("//book/title")


# -- equivalence with independent single-document systems ---------------------------


def test_collection_matches_independent_systems_per_document(library):
    """Property-style check over every library query and document."""
    solos = {name: BLAS.from_xml(text, name=name) for name, text in LIBRARY.items()}
    for query in LIBRARY_QUERIES:
        result = library.query(query)
        by_name = {dr.name: dr for dr in result.per_document}
        for name, solo in solos.items():
            expected = solo.query(query)
            got = by_name[name].result
            assert got.starts == expected.starts, (query, name)
            assert [r.data for r in got.records] == [r.data for r in expected.records]


def test_collection_matches_independent_systems_on_datasets():
    """The bundled datasets: three documents per corpus, one scheme group."""
    for corpus in ("shakespeare", "protein"):
        texts = {
            f"{corpus}-{seed}": document_to_string(build_dataset(corpus, seed=seed))
            for seed in (1, 2, 3)
        }
        collection = BLASCollection()
        for name, text in texts.items():
            collection.add_xml(text, name=name)
        assert len(collection.scheme_groups()) == 1
        queries = {
            "shakespeare": ("//ACT//SPEAKER", "//PLAY/TITLE", "//SPEECH[SPEAKER]/LINE"),
            "protein": ("//protein/name", "//refinfo//author", "//ProteinEntry[protein]/reference"),
        }[corpus]
        for query in queries:
            result = collection.query(query)
            for document_result in result.per_document:
                solo = BLAS.from_xml(texts[document_result.name], name=document_result.name)
                assert document_result.result.starts == solo.query(query).starts, (corpus, query)


# -- parallel fan-out ----------------------------------------------------------------


def test_parallel_and_serial_execution_are_byte_identical(library):
    for query in LIBRARY_QUERIES:
        serial = library.query(query, parallel=False)
        parallel = library.query(query, parallel=True, workers=4)
        assert parallel.parallel and not serial.parallel
        assert [(r.doc_id, r.start, r.end, r.tag, r.data) for r in serial.records] == [
            (r.doc_id, r.start, r.end, r.tag, r.data) for r in parallel.records
        ]
        assert serial.stats.as_dict() == parallel.stats.as_dict()
        assert serial.stats.per_alias_elements == parallel.stats.per_alias_elements


def test_explicit_translator_engine_pairs_fan_out_identically(library):
    auto = library.query("//book/title")
    for translator in ("dlabel", "split", "pushup", "unfold"):
        for engine in ("memory", "twig", "vector"):
            explicit = library.query("//book/title", translator=translator, engine=engine)
            assert explicit.starts == auto.starts, (translator, engine)


def test_sqlite_engine_fans_out_serially(library):
    result = library.query("//book/title", engine="sqlite", parallel=True, workers=4)
    assert not result.parallel
    assert result.values() == ["Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta", "Eta"]


# -- scheme sharing ------------------------------------------------------------------


def test_same_vocabulary_documents_share_a_scheme(library):
    groups = library.scheme_groups()
    assert len(groups) == 1
    assert groups[0].doc_ids == [0, 1, 2]
    schemes = {id(library.entry(d).indexed.scheme) for d in library.doc_ids()}
    assert len(schemes) == 1


def test_disjoint_vocabularies_get_separate_groups(library):
    library.add_xml(PROTEIN_SAMPLE, name="protein")
    assert len(library.scheme_groups()) == 2
    # Queries still span every group.
    result = library.query("//author")
    assert result.counts_by_document()[3] == 4


def test_unfold_requires_schema_across_the_group(library):
    result = library.query("//book/title", translator="unfold", engine="memory")
    assert result.count == 7
    from repro.core.indexer import index_text

    schemaless = BLASCollection()
    schemaless.add_indexed(index_text(DOC_A, extract_schema_graph=False))
    with pytest.raises(SchemaError):
        schemaless.query("//book/title", translator="unfold", engine="memory")


# -- plan caching & invalidation -----------------------------------------------------


def test_plans_are_cached_per_scheme_group(library):
    library.query("//book/title")
    before = library.plan_cache.stats()
    library.query("//book/title")
    after = library.plan_cache.stats()
    assert after["hits"] == before["hits"] + 1
    assert after["misses"] == before["misses"]


def test_add_and_remove_invalidate_cached_plans(library):
    library.query("//book/title")
    group = library.scheme_groups()[0]
    fingerprint = group.fingerprint()
    doc_id = library.add_xml(DOC_A, name="a2")
    assert group.fingerprint() != fingerprint
    result = library.query("//book/title")  # a fresh plan, not the cached one
    assert library.plan_cache.stats()["misses"] >= 2
    assert result.counts_by_document()[doc_id] == 2
    library.remove(doc_id)
    assert group.fingerprint() == fingerprint
    assert library.query("//book/title").count == 7


def test_partitioned_catalog_rejects_unstamped_records():
    from repro.core.indexer import index_text

    store = PartitionedCatalog()
    indexed = index_text(DOC_A)  # records stamped doc_id=0
    with pytest.raises(StorageError):
        store.add_partition(indexed, 5)
    store.add_partition(indexed.with_doc_id(5), 5)
    assert store.doc_ids() == [5]
    with pytest.raises(StorageError):
        store.add_partition(indexed.with_doc_id(5), 5)


def test_merged_statistics_sum_per_document_histograms(library):
    merged = library.scheme_groups()[0].statistics()
    per_doc = [library.entry(d).catalog.statistics() for d in library.doc_ids()]
    assert merged.node_count == sum(stats.node_count for stats in per_doc)
    assert merged.sp.tag_count("book") == sum(s.sp.tag_count("book") for s in per_doc)
    assert merged.sp.plabel_range_count(0, 10**40) == merged.node_count


# -- EXPLAIN & stats ----------------------------------------------------------------


def test_collection_explain_shows_groups_documents_and_cache(library):
    library.add_xml(PROTEIN_SAMPLE, name="protein")
    text = library.explain("//author")
    assert "COLLECTION EXPLAIN //author" in text
    assert "scheme_groups=2" in text
    assert "per-document cost estimates:" in text
    assert "doc 3 (protein)" in text
    assert "plan cache:" in text


def test_collection_stats_exposes_plan_cache_counters(library):
    library.query("//book/title")
    library.query("//book/title")
    stats = library.stats()
    assert stats["documents"] == 3
    assert stats["scheme_groups"] == 1
    assert stats["plan_cache"]["hits"] == 1
    assert stats["plan_cache"]["misses"] == 1


# -- the thin BLAS view --------------------------------------------------------------


def test_blas_is_a_one_document_collection_view():
    system = BLAS.from_xml(PROTEIN_SAMPLE)
    assert len(system.collection) == 1
    assert system.doc_id == 0
    assert system.catalog is system.collection.entry(0).catalog
    assert system.plan_cache is system.collection.plan_cache


def test_document_view_reproduces_standalone_counters(library):
    solo = BLAS.from_xml(DOC_B, name="b")
    view = library.document_view(1)
    for translator in ("dlabel", "split", "pushup"):
        expected = solo.query("//book/title", translator=translator, engine="memory")
        got = view.query("//book/title", translator=translator, engine="memory")
        assert got.starts == expected.starts
        assert got.stats.as_dict() == expected.stats.as_dict()
