"""Tests for the schema graph (DTD summary) used by Unfold."""

from __future__ import annotations

import pytest

from repro.exceptions import SchemaError
from repro.xmlkit.parser import parse_string
from repro.xmlkit.schema import SchemaGraph, extract_schema


@pytest.fixture()
def simple_schema():
    graph = SchemaGraph()
    graph.add_root("db")
    graph.add_edge("db", "entry")
    graph.add_edge("entry", "protein")
    graph.add_edge("entry", "reference")
    graph.add_edge("protein", "name")
    graph.add_edge("protein", "classification")
    graph.add_edge("classification", "superfamily")
    graph.add_edge("reference", "refinfo")
    graph.add_edge("refinfo", "author")
    graph.observe_depth(6)
    return graph


def test_children_and_parents(simple_schema):
    assert simple_schema.children("entry") == {"protein", "reference"}
    assert simple_schema.parents("refinfo") == {"reference"}
    assert simple_schema.children("unknown") == set()


def test_has_edge(simple_schema):
    assert simple_schema.has_edge("protein", "name")
    assert not simple_schema.has_edge("name", "protein")


def test_validate_path(simple_schema):
    assert simple_schema.validate_path(["db", "entry", "protein", "name"])
    assert not simple_schema.validate_path(["entry", "protein"])
    assert not simple_schema.validate_path(["db", "protein"])
    assert not simple_schema.validate_path([])


def test_non_recursive_schema_detection(simple_schema):
    assert not simple_schema.is_recursive()


def test_recursive_schema_detection():
    graph = SchemaGraph()
    graph.add_root("description")
    graph.add_edge("description", "parlist")
    graph.add_edge("parlist", "listitem")
    graph.add_edge("listitem", "parlist")
    assert graph.is_recursive()


def test_enumerate_connecting_paths_between_tags(simple_schema):
    paths = simple_schema.enumerate_connecting_paths("entry", "superfamily")
    assert paths == [("protein", "classification", "superfamily")]


def test_enumerate_direct_child_path(simple_schema):
    paths = simple_schema.enumerate_connecting_paths("protein", "name")
    assert paths == [("name",)]


def test_enumerate_from_roots(simple_schema):
    paths = simple_schema.simple_paths_to("author")
    assert paths == [("db", "entry", "reference", "refinfo", "author")]


def test_enumeration_respects_max_length():
    graph = SchemaGraph()
    graph.add_root("a")
    graph.add_edge("a", "a")  # recursive
    graph.observe_depth(4)
    paths = graph.enumerate_connecting_paths("a", "a", max_length=3)
    assert paths == [("a",), ("a", "a"), ("a", "a", "a")]


def test_enumeration_limit_guard():
    graph = SchemaGraph()
    graph.add_root("a")
    graph.add_edge("a", "a")
    graph.observe_depth(50)
    with pytest.raises(SchemaError):
        graph.enumerate_connecting_paths("a", "a", max_length=40, limit=10)


def test_zero_max_length_is_rejected(simple_schema):
    with pytest.raises(SchemaError):
        simple_schema.enumerate_connecting_paths("entry", "name", max_length=0)


def test_extract_schema_from_document():
    document = parse_string("<db><entry><protein><name>x</name></protein></entry><entry/></db>")
    graph = extract_schema(document)
    assert graph.roots == {"db"}
    assert graph.has_edge("db", "entry")
    assert graph.has_edge("protein", "name")
    assert graph.max_depth == 4


def test_extract_schema_includes_attribute_nodes():
    document = parse_string('<db><entry id="1"/></db>')
    graph = extract_schema(document)
    assert graph.has_edge("entry", "@id")


def test_extract_schema_from_multiple_documents():
    first = parse_string("<db><a/></db>")
    second = parse_string("<db><b><c/></b></db>")
    graph = extract_schema([first, second])
    assert graph.children("db") == {"a", "b"}
    assert graph.max_depth == 3


def test_extracted_auction_schema_is_recursive(auction_document):
    graph = extract_schema(auction_document)
    assert graph.is_recursive()
    assert graph.has_edge("parlist", "listitem")
    assert graph.has_edge("listitem", "parlist")
