"""The invariant analyzer suite: fixtures, the live tree, and the CLI.

Three layers of coverage:

* **Fixtures** — each checker has a broken/compliant fixture pair under
  ``tests/fixtures/analysis/``; the broken ones preserve the shapes of
  real bugs fixed in this repo (see each fixture's regression note).
* **The live tree** — ``lint_paths()`` over ``src/repro`` must be clean,
  and *stay sensitive*: deleting any single ``with self._lock`` that
  lexically guards a declared field must produce an RL01 finding, and
  injecting a hand-rolled bisect scan into a non-storage module must
  produce CA01 findings.
* **The CLI** — ``repro lint`` exit codes, text/json formats, code
  selection and the report file.
"""

from __future__ import annotations

import ast
import json
import pathlib
import re

import pytest

from repro.analysis import CHECKERS, check_source, lint_paths, resolve_codes
from repro.analysis.base import SourceModule
from repro.cli import main
from repro.exceptions import AnalysisError

FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "analysis"

#: Logical (package-relative) paths the fixtures pose as: the path-scoped
#: checkers (CA01, PL01) only police non-storage / fan-out modules.
FIXTURE_LOGICAL = {
    "rl01": "collection/rogue.py",
    "ca01": "engine/rogue.py",
    "pl01": "collection/rogue.py",
    "ep01": "engine/rogue.py",
}

#: The annotated production files the mutation test sweeps.
ANNOTATED_FILES = {
    "src/repro/planner/cache.py": "planner/cache.py",
    "src/repro/storage/table.py": "storage/table.py",
    "src/repro/collection/collection.py": "collection/collection.py",
    "src/repro/server/daemon.py": "server/daemon.py",
}

REPO = pathlib.Path(__file__).parent.parent


def fixture_findings(name: str):
    path = FIXTURES / f"{name}.py"
    code = name.split("_")[0]
    return check_source(
        path.read_text(), path=str(path), logical=FIXTURE_LOGICAL[code]
    )


# -- fixture pairs ------------------------------------------------------------------


@pytest.mark.parametrize("checker", ["rl01", "ca01", "pl01", "ep01"])
def test_bad_fixture_is_flagged(checker):
    findings = fixture_findings(f"{checker}_bad")
    assert findings, f"{checker}_bad.py should produce findings"
    assert {f.code for f in findings} == {checker.upper()}


@pytest.mark.parametrize("checker", ["rl01", "ca01", "pl01", "ep01"])
def test_clean_fixture_is_clean(checker):
    assert fixture_findings(f"{checker}_clean") == []


def test_rl01_fixture_pins_the_save_regression():
    """The unlocked store-binding writes (the ``save()`` bug) are caught."""
    messages = [f.message for f in fixture_findings("rl01_bad")]
    assert any("_paths" in m and "written" in m for m in messages)
    assert any("_store" in m and "written" in m for m in messages)
    assert any("_store" in m and "read" in m for m in messages)


def test_ca01_fixture_pins_the_drift_regression():
    """Both bisect import forms and all counter-write shapes are caught."""
    messages = [f.message for f in fixture_findings("ca01_bad")]
    assert sum("bisect" in m for m in messages) == 2
    assert any("elements_read" in m for m in messages)
    assert any("record_scan" in m for m in messages)
    assert any("record_index_lookup" in m for m in messages)


def test_ep01_fixture_pins_the_capacity_guard_regression():
    """The bare-``ValueError`` capacity guard (the PlanCache bug) is caught."""
    findings = fixture_findings("ep01_bad")
    assert any("ValueError" in f.message for f in findings)
    assert any("RuntimeError" in f.message for f in findings)


# -- the live tree ------------------------------------------------------------------


def test_live_tree_is_clean():
    """The shipped package passes its own invariant analyzers."""
    report = lint_paths()
    assert not report.findings
    assert report.files_checked > 50
    assert set(report.codes) == set(CHECKERS)


def _guarded_with_blocks(module: SourceModule):
    """(line, lock) for every ``with self.<lock>:`` whose body lexically
    touches a field declared guarded by that lock in the enclosing class."""
    blocks = []
    for cls in module.classes():
        guarded = module.guarded.get(cls.name, {})
        if not guarded:
            continue
        for node in ast.walk(cls):
            if not isinstance(node, ast.With):
                continue
            locks = set()
            for item in node.items:
                expr = item.context_expr
                if (
                    isinstance(expr, ast.Attribute)
                    and isinstance(expr.value, ast.Name)
                    and expr.value.id == "self"
                ):
                    locks.add(expr.attr)
            touched = any(
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"
                and inner.attr in guarded
                and guarded[inner.attr].lock in locks
                for statement in node.body
                for inner in ast.walk(statement)
            )
            if touched and locks:
                blocks.append((node.lineno, locks))
    return blocks


@pytest.mark.parametrize("path", sorted(ANNOTATED_FILES))
def test_deleting_any_lock_guard_is_caught(path):
    """Mutation sweep: neutralize each guarding ``with`` one at a time.

    Every ``with self._lock`` block that lexically touches a declared
    guarded field must, when replaced by ``if True:``, make the lock
    checker report — this is the acceptance criterion that the analyzer
    actually protects the annotations it claims to.
    """
    logical = ANNOTATED_FILES[path]
    text = (REPO / path).read_text()
    module = SourceModule(text, path=path, logical=logical)
    blocks = _guarded_with_blocks(module)
    assert blocks, f"{path} should have lock-guarded with-blocks"
    lines = text.splitlines()
    for line_no, _locks in blocks:
        original = lines[line_no - 1]
        match = re.match(r"^(\s*)with\s", original)
        if match is None:
            continue  # multi-line with items; the single-line form covers all locks here
        mutated = lines[:]
        mutated[line_no - 1] = f"{match.group(1)}if True:"
        findings = check_source("\n".join(mutated), path=path, logical=logical)
        assert any(f.code == "RL01" for f in findings), (
            f"deleting the lock at {path}:{line_no} went undetected"
        )


def test_injected_bisect_scan_is_caught():
    """Adding a hand-rolled packed-column bisect to a non-storage module
    (here: the planner's cost model) makes the tree lint dirty."""
    path = REPO / "src/repro/planner/cost.py"
    rogue = (
        "\n\nimport bisect\n\n"
        "def rogue_count(stats, column, value):\n"
        "    stats.elements_read += bisect.bisect_left(column, value)\n"
    )
    findings = check_source(
        path.read_text() + rogue, path=str(path), logical="planner/cost.py"
    )
    assert {f.code for f in findings} == {"CA01"}
    assert len(findings) >= 2  # the import and the counter write


# -- annotation layer ---------------------------------------------------------------


def test_unbound_guarded_annotation_is_an_error():
    source = "#: guarded-by: _lock\nx = 1\n"
    with pytest.raises(AnalysisError, match="does not precede"):
        check_source(source)


def test_guarded_annotation_outside_class_is_an_error():
    source = "def f(self):\n    self.x = 1  #: guarded-by: _lock\n"
    with pytest.raises(AnalysisError, match="outside a class"):
        check_source(source)


def test_annotation_text_inside_docstring_is_inert():
    """Annotation grammar quoted in docstrings must not register."""
    source = '"""Docs mention #: guarded-by: _lock here."""\nx = 1\n'
    assert check_source(source) == []


def test_suppression_requires_justification():
    bad = "def f(n):\n    raise ValueError(n)  # lint: ignore[EP01]\n"
    findings = check_source(bad)
    assert [f.code for f in findings] == ["EP01"]

    good = (
        "def f(n):\n"
        "    raise ValueError(n)  # lint: ignore[EP01] -- fixture exercising raises\n"
    )
    assert check_source(good) == []


def test_standalone_suppression_covers_next_code_line():
    source = (
        "def f(n):\n"
        "    # lint: ignore[EP01] -- fixture exercising raises\n"
        "    # (continued explanation)\n"
        "    raise ValueError(n)\n"
    )
    assert check_source(source) == []


def test_syntax_error_raises_analysis_error():
    with pytest.raises(AnalysisError, match="cannot parse"):
        check_source("def broken(:\n")


# -- code selection -----------------------------------------------------------------


def test_resolve_codes_select_and_ignore():
    # Selected codes keep their selection order; ignores filter the rest.
    assert resolve_codes(["EP01", "RL01"], None) == ("EP01", "RL01")
    assert resolve_codes(None, ["RL01"]) == ("CA01", "PL01", "EP01")
    assert resolve_codes(None, None) == tuple(CHECKERS)


def test_resolve_codes_rejects_unknown():
    with pytest.raises(AnalysisError, match="unknown checker code"):
        resolve_codes(["ZZ99"], None)


def test_select_limits_checkers():
    path = FIXTURES / "ep01_bad.py"
    text = path.read_text()
    assert check_source(text, logical="engine/rogue.py", codes=("RL01",)) == []
    assert check_source(text, logical="engine/rogue.py", codes=("EP01",))


# -- the CLI ------------------------------------------------------------------------


def test_cli_lint_flags_bad_fixture(capsys):
    exit_code = main(["lint", str(FIXTURES / "ep01_bad.py")])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "EP01" in out
    assert out.rstrip().endswith("error: 2 invariant violation(s) found")


def test_cli_lint_clean_fixture_exits_zero(capsys):
    exit_code = main(["lint", str(FIXTURES / "ep01_clean.py")])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "clean" in out
    assert "error:" not in out


def test_cli_lint_default_tree_is_clean(capsys):
    assert main(["lint"]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_lint_json_format(capsys):
    exit_code = main(["lint", "--format", "json", str(FIXTURES / "ep01_bad.py")])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 1
    assert payload["version"] == 1
    assert payload["count"] == 2
    assert payload["files_checked"] == 1
    assert {f["code"] for f in payload["findings"]} == {"EP01"}
    assert all(
        set(f) == {"path", "line", "code", "message"} for f in payload["findings"]
    )


def test_cli_lint_ignore_silences_code(capsys):
    exit_code = main(["lint", "--ignore", "EP01", str(FIXTURES / "ep01_bad.py")])
    assert exit_code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_lint_select_other_code_is_clean(capsys):
    exit_code = main(["lint", "--select", "RL01", str(FIXTURES / "ep01_bad.py")])
    assert exit_code == 0
    capsys.readouterr()


def test_cli_lint_unknown_code_is_cli_error(capsys):
    exit_code = main(["lint", "--select", "ZZ99", str(FIXTURES / "ep01_bad.py")])
    assert exit_code == 1
    assert "error:" in capsys.readouterr().out


def test_cli_lint_missing_path_is_cli_error(capsys):
    exit_code = main(["lint", str(FIXTURES / "does_not_exist.py")])
    assert exit_code == 1
    assert "error:" in capsys.readouterr().out


def test_cli_lint_output_writes_report_file(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    exit_code = main([
        "lint", "--output", str(report_path), str(FIXTURES / "ep01_bad.py")
    ])
    capsys.readouterr()
    assert exit_code == 1
    payload = json.loads(report_path.read_text())
    assert payload["count"] == 2
