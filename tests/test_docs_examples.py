"""The documentation cannot rot: every code fence in docs/ must run.

Doctest-style enforcement for the markdown docs (and the README
quickstart): ``python`` fences execute top-to-bottom in one namespace per
file, and every ``repro …`` line inside ``bash`` fences runs through the
real CLI entry point and must exit 0.  Fences tagged ``text``/``json`` are
illustrative and skipped.  Each file runs in its own scratch directory, so
examples that create files compose within a file but not across files.
"""

from __future__ import annotations

import os
import re
import shlex

import pytest

from repro.cli import main as cli_main

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOCUMENTS = [
    "docs/architecture.md",
    "docs/cli.md",
    "docs/daemon.md",
    "docs/file-format.md",
    "docs/static-analysis.md",
    "README.md",
]

FENCE_RE = re.compile(r"^```([A-Za-z]*)[^\n]*\n(.*?)^```", re.M | re.S)


def iter_fences(path):
    """Yield ``(language, body)`` for every fenced code block in a file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    for match in FENCE_RE.finditer(text):
        yield match.group(1).lower(), match.group(2)


def run_bash_fence(body: str) -> None:
    """Run every ``repro …`` command of a bash fence through the CLI.

    Other lines (comments, `pip install`, shell plumbing) are environment
    setup the test process already provides; they are skipped rather than
    shelled out.
    """
    for line in body.splitlines():
        line = line.strip()
        if not line.startswith("repro "):
            continue
        arguments = shlex.split(line, comments=True)[1:]
        code = cli_main(arguments)
        assert code == 0, f"exit code {code} from: {line}"


@pytest.mark.parametrize("relative", DOCUMENTS)
def test_every_code_fence_runs(relative, tmp_path, monkeypatch, capsys):
    path = os.path.join(REPO_ROOT, relative)
    monkeypatch.chdir(tmp_path)
    namespace = {}
    ran = 0
    for language, body in iter_fences(path):
        if language == "python":
            exec(compile(body, f"{relative}:fence", "exec"), namespace)
            ran += 1
        elif language == "bash":
            run_bash_fence(body)
            ran += 1
    # Every document must actually exercise something (guards against a
    # future edit renaming the fence tags and silently disabling the check).
    assert ran > 0, f"{relative} has no runnable fences"


def test_documents_exist_and_are_linked_from_readme():
    with open(os.path.join(REPO_ROOT, "README.md"), "r", encoding="utf-8") as handle:
        readme = handle.read()
    for relative in DOCUMENTS:
        assert os.path.exists(os.path.join(REPO_ROOT, relative))
        if relative != "README.md":
            assert os.path.basename(relative) in readme, (
                f"README.md should link to {relative}"
            )
