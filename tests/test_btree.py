"""Tests for the B+ tree index."""

from __future__ import annotations

import pytest

from repro.exceptions import StorageError
from repro.storage.btree import BPlusTree


def test_order_must_be_reasonable():
    with pytest.raises(StorageError):
        BPlusTree(order=2)


def test_insert_and_point_lookup():
    tree = BPlusTree(order=4)
    for key in [5, 1, 9, 3, 7]:
        tree.insert(key, f"v{key}")
    assert tree.get(3) == ["v3"]
    assert tree.get(4) == []
    assert 9 in tree
    assert 10 not in tree
    assert len(tree) == 5


def test_duplicate_keys_accumulate_values():
    tree = BPlusTree(order=4)
    tree.insert(1, "a")
    tree.insert(1, "b")
    assert sorted(tree.get(1)) == ["a", "b"]
    assert len(tree) == 2


def test_range_scan_is_inclusive_and_ordered():
    tree = BPlusTree(order=4)
    for key in range(100):
        tree.insert(key, key * 10)
    values = [value for _, value in tree.range(10, 20)]
    assert values == [key * 10 for key in range(10, 21)]


def test_range_scan_with_empty_interval():
    tree = BPlusTree(order=4)
    for key in range(10):
        tree.insert(key, key)
    assert list(tree.range(7, 3)) == []
    assert list(tree.range(100, 200)) == []


def test_range_scan_spanning_leaf_boundaries():
    tree = BPlusTree(order=3)
    for key in range(200):
        tree.insert(key, key)
    assert [key for key, _ in tree.range(0, 199)] == list(range(200))


def test_items_and_keys_iterate_in_order():
    tree = BPlusTree(order=4)
    import random

    keys = list(range(500))
    random.Random(3).shuffle(keys)
    for key in keys:
        tree.insert(key, str(key))
    assert [key for key, _ in tree.items()] == list(range(500))
    assert list(tree.keys()) == list(range(500))


def test_min_and_max_key():
    tree = BPlusTree(order=4)
    assert tree.min_key() is None
    assert tree.max_key() is None
    for key in [42, 7, 99]:
        tree.insert(key, None)
    assert tree.min_key() == 7
    assert tree.max_key() == 99


def test_string_keys_are_supported():
    tree = BPlusTree(order=4)
    for word in ["pear", "apple", "quince", "banana"]:
        tree.insert(word, word.upper())
    assert [key for key, _ in tree.items()] == ["apple", "banana", "pear", "quince"]
    assert [value for _, value in tree.range("b", "p")] == ["BANANA"]


def test_bulk_load_matches_incremental_inserts():
    items = [(key % 37, key) for key in range(300)]
    bulk = BPlusTree.bulk_load(items, order=8)
    incremental = BPlusTree(order=8)
    for key, value in items:
        incremental.insert(key, value)
    assert sorted(bulk.items()) == sorted(incremental.items())


def test_tree_height_grows_logarithmically():
    tree = BPlusTree(order=4)
    for key in range(1000):
        tree.insert(key, key)
    assert tree.height <= 8


def test_invariants_hold_after_many_inserts():
    tree = BPlusTree(order=5)
    import random

    rng = random.Random(11)
    for _ in range(2000):
        tree.insert(rng.randint(0, 500), rng.random())
    tree.check_invariants()
