"""Tests for the binary structural D-join."""

from __future__ import annotations

from repro.core.indexer import NodeRecord
from repro.engine.structural_join import join_records, structural_join
from repro.storage.stats import AccessStatistics


def record(tag, start, end, level, doc_id=0):
    return NodeRecord(plabel=0, start=start, end=end, level=level, tag=tag, doc_id=doc_id)


# A small document: a(1,12) [ b(2,7) [ c(3,4) d(5,6) ] b(8,11) [ c(9,10) ] ]
A = record("a", 1, 12, 1)
B1 = record("b", 2, 7, 2)
C1 = record("c", 3, 4, 3)
D1 = record("d", 5, 6, 3)
B2 = record("b", 8, 11, 2)
C2 = record("c", 9, 10, 3)


def test_ancestor_descendant_pairs():
    pairs = join_records([B1, B2], [C1, C2, D1])
    assert set((a.start, d.start) for a, d in pairs) == {(2, 3), (2, 5), (8, 9)}


def test_level_gap_restricts_to_children():
    pairs = join_records([A], [C1, C2, B1, B2], level_gap=1)
    assert set(d.start for _, d in pairs) == {2, 8}


def test_min_level_gap_excludes_near_descendants():
    pairs = join_records([A], [B1, C1], min_level_gap=2)
    assert set(d.start for _, d in pairs) == {3}


def test_no_pairs_across_documents():
    other = record("c", 3, 4, 3, doc_id=1)
    assert join_records([B1], [other]) == []
    same = record("c", 3, 4, 3, doc_id=0)
    assert len(join_records([B1], [same])) == 1


def test_unsorted_inputs_are_handled():
    pairs = join_records([B2, B1], [D1, C2, C1])
    assert len(pairs) == 3


def test_empty_inputs():
    assert structural_join([], [C1]) == []
    assert structural_join([B1], []) == []


def test_self_containment_is_not_reported():
    assert join_records([B1], [B1]) == []


def test_indexes_refer_to_input_positions():
    ancestors = [B2, B1]
    descendants = [C2, C1]
    pairs = structural_join(ancestors, descendants)
    for a_index, d_index in pairs:
        ancestor, descendant = ancestors[a_index], descendants[d_index]
        assert ancestor.start < descendant.start and ancestor.end > descendant.end


def test_stats_record_join_work():
    stats = AccessStatistics()
    structural_join([A, B1, B2], [C1, C2, D1], stats=stats)
    assert stats.djoins_executed == 1
    assert stats.tuples_output == 6  # each c/d node pairs with a and its b
    assert stats.comparisons >= stats.tuples_output


def test_large_join_matches_nested_loop(protein_indexed):
    records = protein_indexed.records
    entries = [r for r in records if r.tag == "ProteinEntry"]
    authors = [r for r in records if r.tag == "author"]
    fast = {(a.start, d.start) for a, d in join_records(entries, authors)}
    slow = {
        (a.start, d.start)
        for a in entries
        for d in authors
        if a.start < d.start and a.end > d.end
    }
    assert fast == slow


def test_level_gap_join_matches_nested_loop(protein_indexed):
    records = protein_indexed.records
    refinfos = [r for r in records if r.tag == "refinfo"]
    authors = [r for r in records if r.tag == "author"]
    fast = {(a.start, d.start) for a, d in join_records(refinfos, authors, level_gap=2)}
    slow = {
        (a.start, d.start)
        for a in refinfos
        for d in authors
        if a.start < d.start and a.end > d.end and d.level - a.level == 2
    }
    assert fast == slow
