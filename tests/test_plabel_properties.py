"""Property-based tests for the P-labeling scheme (hypothesis).

These check the paper's Definition 3.2/3.3 invariants over randomly chosen
vocabularies and paths: the two constructions (literal Algorithm 1 and the
closed-form digit formulation) always agree, containment of intervals is
exactly suffix containment of paths, and node labels answer suffix-path
queries if and only if the query is a suffix of the node's rooted path.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.plabel import PLabelScheme

TAG_POOL = ["a", "b", "c", "d", "e", "f", "g", "h"]
HEIGHT = 8

tags_strategy = st.lists(st.sampled_from(TAG_POOL), min_size=1, max_size=HEIGHT)
rooted_strategy = st.booleans()


def scheme() -> PLabelScheme:
    return PLabelScheme(TAG_POOL, height=HEIGHT)


@given(steps=tags_strategy, rooted=rooted_strategy)
@settings(max_examples=200, deadline=None)
def test_literal_and_digit_constructions_agree(steps, rooted):
    s = scheme()
    assert s.suffix_path_interval(steps, rooted) == s.suffix_path_interval_digits(steps, rooted)


@given(path=tags_strategy)
@settings(max_examples=200, deadline=None)
def test_node_plabel_round_trips_through_decode(path):
    s = scheme()
    assert s.decode_plabel(s.node_plabel(path)) == path


@given(path=tags_strategy, query=tags_strategy, rooted=rooted_strategy)
@settings(max_examples=300, deadline=None)
def test_membership_matches_suffix_semantics(path, query, rooted):
    s = scheme()
    plabel = s.node_plabel(path)
    if rooted:
        expected = list(query) == list(path)
    else:
        expected = len(query) <= len(path) and list(path[len(path) - len(query):]) == list(query)
    assert s.plabel_matches(plabel, query, rooted=rooted) == expected


@given(first=tags_strategy, second=tags_strategy)
@settings(max_examples=200, deadline=None)
def test_interval_containment_is_suffix_containment(first, second):
    s = scheme()
    one = s.suffix_path_interval(first)
    two = s.suffix_path_interval(second)
    # //first ⊆ //second iff second is a suffix of first.
    second_is_suffix = len(second) <= len(first) and first[len(first) - len(second):] == second
    assert two.contains_interval(one) == second_is_suffix


@given(first=tags_strategy, second=tags_strategy)
@settings(max_examples=200, deadline=None)
def test_suffix_paths_nest_or_are_disjoint(first, second):
    # The paper's observation: two suffix paths either contain one another or
    # do not overlap at all.
    s = scheme()
    one = s.suffix_path_interval(first)
    two = s.suffix_path_interval(second)
    nested = one.contains_interval(two) or two.contains_interval(one)
    assert nested or not one.overlaps(two)


@given(path=tags_strategy)
@settings(max_examples=100, deadline=None)
def test_node_plabels_fall_inside_every_suffix_interval(path):
    s = scheme()
    plabel = s.node_plabel(path)
    for suffix_length in range(1, len(path) + 1):
        suffix = path[len(path) - suffix_length:]
        interval = s.suffix_path_interval(suffix)
        assert interval.contains_point(plabel)
