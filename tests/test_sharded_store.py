"""Tests for the sharded collection-store layout.

One logical collection spans multiple shard directories: the root
``MANIFEST.json`` lists the shards, each shard holds a complete manifest
plus its own ``partitions/``.  Covers round trips, emptiest-shard append
routing, single-shard manifest rewrites on mutation, per-shard garbage
collection, the missing-shard error, and the in-place resharding guards.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.collection import BLASCollection
from repro.exceptions import PersistError
from repro.storage.persist import MANIFEST_NAME, CollectionStore

DOC_TEXTS = {
    "alpha.xml": (
        "<lib><book><title>alpha one</title><year>2001</year></book>"
        "<book><title>alpha two</title><year>2002</year></book></lib>"
    ),
    "beta.xml": (
        "<lib><book><title>beta one</title><year>2003</year></book>"
        "<book><title>beta two</title><year>2004</year></book></lib>"
    ),
    "gamma.xml": (
        "<lib><book><title>gamma one</title><year>2006</year></book></lib>"
    ),
}

QUERIES = ("//title", "//book[year]", "/lib/book/title")


def build_collection() -> BLASCollection:
    collection = BLASCollection()
    for name, text in DOC_TEXTS.items():
        collection.add_xml(text, name=name)
    return collection


def shard_manifest(store: str, shard: str) -> bytes:
    with open(os.path.join(store, shard, MANIFEST_NAME), "rb") as handle:
        return handle.read()


# -- layout and round trips ---------------------------------------------------------


def test_sharded_layout_on_disk(tmp_path):
    store = str(tmp_path / "store")
    build_collection().save(store, shards=2)
    with open(os.path.join(store, MANIFEST_NAME)) as handle:
        root = json.load(handle)
    assert root["format"] == "blas-collection-store-sharded"
    assert root["shards"] == ["shard-00", "shard-01"]
    for shard in root["shards"]:
        assert os.path.isfile(os.path.join(store, shard, MANIFEST_NAME))
        assert os.path.isdir(os.path.join(store, shard, "partitions"))
    # Every document's partition file lives inside its manifest shard.
    opened = CollectionStore(store)
    manifest = opened.read_manifest()
    assert opened.is_sharded
    for document in manifest.documents:
        shard = document.partition.partition("/")[0]
        assert shard in root["shards"]
        assert os.path.isfile(os.path.join(store, document.partition))


@pytest.mark.parametrize("compression", [None, "hot-raw", "raw"])
def test_sharded_round_trip_is_byte_identical(tmp_path, compression):
    fresh = build_collection()
    store = str(tmp_path / "store")
    fresh.save(store, shards=3, compression=compression)
    opened = BLASCollection.open(store)
    for query in QUERIES:
        a, b = fresh.query(query), opened.query(query)
        assert a.starts == b.starts, query
        assert a.values() == b.values(), query
        assert a.stats.as_dict() == b.stats.as_dict(), query


def test_more_shards_than_documents_is_fine(tmp_path):
    store = str(tmp_path / "store")
    build_collection().save(store, shards=8)
    opened = BLASCollection.open(store)
    assert opened.query("//title").count == 5


# -- append routing and single-shard rewrites ---------------------------------------


def test_append_routes_to_the_emptiest_shard(tmp_path):
    store = str(tmp_path / "store")
    collection = build_collection()
    collection.save(store, shards=2)
    sizes = CollectionStore(store).shard_sizes()
    emptiest = min(sizes, key=sizes.get)
    doc_id = collection.add_xml(
        "<lib><book><title>delta</title><year>2007</year></book></lib>",
        name="delta.xml",
    )
    placed = collection._partition_paths[doc_id]
    assert placed.partition("/")[0] == emptiest
    # And the store balances: repeated appends never pile onto one shard.
    for index in range(4):
        collection.add_xml(
            f"<lib><book><title>extra {index}</title></book></lib>",
            name=f"extra{index}.xml",
        )
    by_shard = {"shard-00": 0, "shard-01": 0}
    for path in collection._partition_paths.values():
        by_shard[path.partition("/")[0]] += 1
    assert min(by_shard.values()) >= 3


def test_append_rewrites_only_the_touched_shard_manifest(tmp_path):
    store = str(tmp_path / "store")
    collection = build_collection()
    collection.save(store, shards=2)
    sizes = CollectionStore(store).shard_sizes()
    target = min(sizes, key=sizes.get)
    other = next(shard for shard in sizes if shard != target)
    before = shard_manifest(store, other)
    collection.add_xml("<lib><book><title>delta</title></book></lib>", name="delta.xml")
    assert shard_manifest(store, other) == before  # untouched shard: same bytes
    assert shard_manifest(store, target) != before


def test_remove_persists_and_touches_one_shard(tmp_path):
    store = str(tmp_path / "store")
    collection = build_collection()
    collection.save(store, shards=2)
    victim_path = collection._partition_paths[0]
    victim_shard = victim_path.partition("/")[0]
    other = next(
        shard
        for shard in CollectionStore(store).shard_sizes()
        if shard != victim_shard
    )
    before = shard_manifest(store, other)
    collection.remove("alpha.xml")
    assert not os.path.exists(os.path.join(store, victim_path))
    assert shard_manifest(store, other) == before
    reopened = BLASCollection.open(store)
    assert sorted(entry["name"] for entry in reopened.documents()) == [
        "beta.xml",
        "gamma.xml",
    ]
    assert reopened.query("//title").count == 3


def test_scheme_groups_stay_stable_across_shard_mutations(tmp_path):
    """Emptied scheme groups keep their manifest positions, so shard
    manifests skipped by a mutation never reference a shifted group id."""
    collection = BLASCollection()
    collection.add_xml(DOC_TEXTS["alpha.xml"], name="alpha.xml")
    collection.add_xml("<news><story><headline>h1</headline></story></news>",
                       name="news.xml")
    store = str(tmp_path / "store")
    collection.save(store, shards=2)
    collection.remove("alpha.xml")  # empties the first scheme group
    collection.add_xml("<news><story><headline>h2</headline></story></news>",
                       name="more.xml")
    reopened = BLASCollection.open(store)
    assert reopened.query("//headline").count == 2
    assert reopened.query("//title").count == 0


def test_resave_collects_garbage_in_every_shard(tmp_path):
    store = str(tmp_path / "store")
    collection = build_collection()
    collection.save(store, shards=2)
    for shard in ("shard-00", "shard-01"):
        orphan = os.path.join(store, shard, "partitions", "doc-99999-deadbeef.blas")
        with open(orphan, "wb") as handle:
            handle.write(b"orphan")
    build_collection().save(store, shards=2)
    for shard in ("shard-00", "shard-01"):
        assert not os.path.exists(
            os.path.join(store, shard, "partitions", "doc-99999-deadbeef.blas")
        )
    assert BLASCollection.open(store).query("//title").count == 5


# -- failure modes ------------------------------------------------------------------


def test_missing_shard_directory_is_reported_by_name(tmp_path):
    store = str(tmp_path / "store")
    build_collection().save(store, shards=2)
    os.remove(os.path.join(store, "shard-01", MANIFEST_NAME))
    with pytest.raises(PersistError, match=r"missing shard 'shard-01'"):
        BLASCollection.open(store)


def test_resharding_in_place_is_rejected(tmp_path):
    store = str(tmp_path / "store")
    build_collection().save(store, shards=2)
    with pytest.raises(PersistError, match="resharding"):
        CollectionStore(store, shards=3).shard_names()


def test_sharding_an_existing_unsharded_store_is_rejected(tmp_path):
    store = str(tmp_path / "store")
    build_collection().save(store)
    with pytest.raises(PersistError, match="sharding an existing store"):
        CollectionStore(store, shards=2).shard_names()


def test_shard_count_must_be_positive(tmp_path):
    with pytest.raises(PersistError):
        CollectionStore(str(tmp_path / "store"), shards=0)


def test_sharded_store_keeps_fingerprints_and_plans_valid(tmp_path):
    fresh = build_collection()
    store = str(tmp_path / "store")
    fresh.save(store, shards=2)
    opened = BLASCollection.open(store)
    for doc_id in fresh.doc_ids():
        assert fresh.store.partition_fingerprint(
            doc_id
        ) == opened.store.partition_fingerprint(doc_id)
