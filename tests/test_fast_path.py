"""Fast-path planning: the greedy short-cut provably matches enumeration.

The planner's fast path skips candidate enumeration when pattern
selectivity is syntactically obvious (one linear child-axis chain, no
residual predicate when a schema graph exists).  These tests hold it to
the PR's guarantee: on every workload query the fast path and exhaustive
enumeration pick the same winner and produce byte-identical answers and
visited-element counters — and the plan budget (``plan_budget_ms``),
which *can* legitimately force a greedy plan that enumeration would have
beaten, still never does worse than the seed default.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.bench.harness import build_bench_system
from repro.collection import BLASCollection
from repro.core.indexer import index_text
from repro.planner.planner import QueryPlanner, fast_path_chain
from repro.system import BLAS
from repro.xpath.parser import parse_xpath
from repro.xpath.query_tree import build_query_tree

from tests.conftest import PROTEIN_SAMPLE

#: Workload queries whose shape is provably fast-path eligible (linear
#: chains without residual predicates).  The property test below asserts
#: both that these actually take the fast path and that every other query
#: falls back — so the short-cut neither silently dies nor overreaches.
ELIGIBLE = {
    ("shakespeare", "QS1"),
    ("protein", "QP1"),
    ("auction", "QA1"),
    ("auction", "Q2"),
    ("auction", "Q5"),
}


@pytest.fixture(scope="module", params=["shakespeare", "protein", "auction"])
def bench(request):
    return request.param, build_bench_system(request.param, scale=1)


@contextlib.contextmanager
def fast_path_disabled(planner: QueryPlanner):
    """Force full enumeration by blinding the closed-form decision."""
    original = planner._fast_path_decision
    planner._fast_path_decision = lambda tree: None
    try:
        yield
    finally:
        planner._fast_path_decision = original


def _tree(text: str):
    return build_query_tree(parse_xpath(text))


# -- the property: both paths agree on the whole workload ---------------------------


def test_fast_path_matches_exhaustive_on_the_whole_workload(bench):
    dataset, harness = bench
    system = harness.system
    planner = system.planner
    for name, path in sorted(harness.queries.items()):
        text = str(path)
        tree = _tree(text)
        fast = planner.plan(tree, text)
        with fast_path_disabled(planner):
            full = planner.plan(tree, text)
        assert fast.fast_path == ((dataset, name) in ELIGIBLE), (dataset, name)
        assert not full.fast_path
        # Same winner: translator, engine, and the full estimated cost.
        assert fast.translator == full.translator, (dataset, name)
        assert fast.engine == full.engine, (dataset, name)
        assert fast.estimated == full.estimated, (dataset, name)
        # Byte-identical answers and visited-element counters.
        fast_result = system._execute_planned(fast)
        full_result = system._execute_planned(full)
        assert fast_result.starts == full_result.starts, (dataset, name)
        assert [r.data for r in fast_result.records] == [
            r.data for r in full_result.records
        ]
        assert fast_result.stats.elements_read == full_result.stats.elements_read
        assert fast_result.stats.pages_read == full_result.stats.pages_read


def test_closed_form_decision_matches_the_cost_model(bench):
    """The timed decision and the model-priced winner can never drift."""
    dataset, harness = bench
    planner = harness.system.planner
    for name, path in sorted(harness.queries.items()):
        text = str(path)
        tree = _tree(text)
        decision = planner._fast_path_decision(tree)
        if (dataset, name) not in ELIGIBLE:
            assert decision is None, (dataset, name)
            continue
        planned = planner.plan(tree, text)
        assert decision is not None, (dataset, name)
        assert decision[0] == planned.engine, (dataset, name)
        assert decision[1] == planned.estimated, (dataset, name)


# -- eligibility edges --------------------------------------------------------------


def test_multi_branch_twigs_are_ineligible(protein_system):
    twig = "/ProteinDatabase/ProteinEntry[protein/name]/reference"
    assert fast_path_chain(_tree(twig)) is None
    planned = protein_system.plan_query(twig)
    assert not planned.fast_path
    assert planned.plan_mode == "exhaustive"


def test_interior_descendant_axes_are_ineligible(protein_system):
    planned = protein_system.plan_query("/ProteinDatabase//refinfo/year")
    assert not planned.fast_path


def test_wildcards_are_ineligible(protein_system):
    planned = protein_system.plan_query("//refinfo/*")
    assert not planned.fast_path


def test_residual_predicate_with_schema_present_is_ineligible(protein_system):
    """Unfold can prune per-path on residuals, so the shape must enumerate."""
    assert protein_system.schema is not None
    query = '//refinfo/year = "2001"'
    planned = protein_system.plan_query(query)
    assert not planned.fast_path
    # The fast path would have been wrong to fire only if Unfold undercuts;
    # enumeration and the greedy shape still answer identically.
    budget_forced = protein_system.plan_query(query, plan_budget_ms=0)
    assert budget_forced.budget_forced
    fast_result = protein_system._execute_planned(budget_forced)
    full_result = protein_system._execute_planned(planned)
    assert fast_result.starts == full_result.starts


def test_residual_predicate_without_schema_is_eligible():
    """With no schema graph there is no Unfold candidate to undercut."""
    indexed = index_text(PROTEIN_SAMPLE, extract_schema_graph=False)
    system = BLAS(indexed)
    query = '//refinfo/year = "2001"'
    planned = system.plan_query(query)
    assert planned.fast_path
    with fast_path_disabled(system.planner):
        full = system.planner.plan(_tree(query), query)
    assert (planned.translator, planned.engine) == (full.translator, full.engine)
    assert planned.estimated == full.estimated
    assert system._execute_planned(planned).starts == (
        system._execute_planned(full).starts
    )


def test_explicit_translator_or_engine_bypasses_the_fast_path(protein_system):
    assert not protein_system.plan_query("//refinfo/year", translator="pushup").fast_path
    assert not protein_system.plan_query("//refinfo/year", engine="memory").fast_path


def test_empty_collection_with_budget_answers_empty():
    collection = BLASCollection()
    result = collection.query("//anything", plan_budget_ms=0)
    assert result.count == 0
    assert result.records == []


def test_store_opened_with_cache_bytes_matches_exhaustive(tmp_path, protein_xml):
    collection = BLASCollection()
    collection.add_xml(protein_xml, name="protein.xml")
    collection.save(str(tmp_path / "store"))
    opened = BLASCollection.open(str(tmp_path / "store"), cache_bytes=1)
    query = "//refinfo/year"
    fast = opened.query(query)
    exhaustive = opened.query(query, plan_budget_ms=1e9)
    assert [r.start for r in fast.records] == [r.start for r in exhaustive.records]
    assert [r.data for r in fast.records] == [r.data for r in exhaustive.records]
    assert fast.stats.elements_read == exhaustive.stats.elements_read


# -- plan budget extremes -----------------------------------------------------------


def test_budget_zero_always_forces_greedy(protein_system):
    """``plan_budget_ms=0`` is deterministic: one translator, then stop."""
    for query in ("//refinfo/year", "/ProteinDatabase//refinfo/year",
                  "/ProteinDatabase/ProteinEntry[protein/name]/reference"):
        planned = protein_system.plan_query(query, plan_budget_ms=0)
        assert planned.fast_path or planned.budget_forced, query
        assert planned.plan_budget_ms == 0
        exhaustive = protein_system.plan_query(query)
        fast_result = protein_system._execute_planned(planned)
        full_result = protein_system._execute_planned(exhaustive)
        assert fast_result.starts == full_result.starts, query
        assert [r.data for r in fast_result.records] == [
            r.data for r in full_result.records
        ]


def test_huge_budget_never_forces_greedy(protein_system):
    planned = protein_system.plan_query(
        "/ProteinDatabase//refinfo/year", plan_budget_ms=1e9
    )
    assert not planned.budget_forced
    assert planned.skipped_candidates == 0
    assert planned.plan_mode == "exhaustive"
    baseline = protein_system.plan_query("/ProteinDatabase//refinfo/year")
    assert (planned.translator, planned.engine) == (
        baseline.translator, baseline.engine
    )


def test_budget_is_part_of_the_cache_key(protein_system):
    protein_system.plan_cache.clear()
    first = protein_system.plan_query("//refinfo/title", plan_budget_ms=0)
    second = protein_system.plan_query("//refinfo/title")
    assert not first.cache_hit
    assert not second.cache_hit  # different budget, different slot
    third = protein_system.plan_query("//refinfo/title", plan_budget_ms=0)
    assert third.cache_hit


# -- the tier-1 guard: budget-forced greedy never does worse than the seed ----------


def test_budget_forced_plans_never_visit_more_elements_than_the_seed(bench):
    dataset, harness = bench
    system = harness.system
    for name, path in sorted(harness.queries.items()):
        text = str(path)
        planned = system.plan_query(text, plan_budget_ms=0)
        assert planned.fast_path or planned.budget_forced, (dataset, name)
        greedy = system._execute_planned(planned)
        seed = system.query(text, translator="pushup", engine="memory")
        assert greedy.starts == seed.starts, (dataset, name)
        assert greedy.stats.elements_read <= seed.stats.elements_read, (dataset, name)


# -- observability ------------------------------------------------------------------


def test_explain_shows_plan_mode_and_skipped_candidates(protein_system):
    text = protein_system.explain("//refinfo/year")
    assert "planning:" in text
    assert "(fast path" in text
    assert "skipped (fast path)" in text
    assert "<- chosen" in text
    # The candidate table still shows the greedy winner's engine pricing.
    assert "pushup" in text


def test_explain_shows_budget_mode_on_forced_plans(protein_system):
    text = protein_system.explain(
        "/ProteinDatabase/ProteinEntry[protein/name]/reference", plan_budget_ms=0
    )
    assert "greedy (plan budget)" in text
    assert "skipped (plan budget)" in text


def test_fast_path_populates_plan_time_accounting(protein_system):
    protein_system.plan_cache.clear()
    protein_system.plan_query("//refinfo/year")
    protein_system.plan_query("//refinfo/year")  # hit
    stats = protein_system.plan_cache.stats()
    assert stats["plan_ms_total"] > 0
    assert stats["plan_ms_saved"] > 0
    assert sum(stats["plan_ms_histogram"].values()) == stats["misses"]
