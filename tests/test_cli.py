"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from tests.conftest import PROTEIN_SAMPLE


@pytest.fixture()
def xml_file(tmp_path):
    path = tmp_path / "protein.xml"
    path.write_text(PROTEIN_SAMPLE, encoding="utf-8")
    return str(path)


def test_parser_requires_a_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_query_command_prints_results(xml_file, capsys):
    code = main(["query", xml_file, "//protein/name"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "3 result node(s)" in captured
    assert "cytochrome c [validated]" in captured


def test_query_command_with_plan_and_sql(xml_file, capsys):
    code = main([
        "query", xml_file, "//author", "--translator", "split",
        "--engine", "sqlite", "--show-plan", "--show-sql",
    ])
    captured = capsys.readouterr().out
    assert code == 0
    assert "QueryPlan[split]" in captured
    assert "SELECT DISTINCT" in captured


def test_query_command_respects_the_limit(xml_file, capsys):
    main(["query", xml_file, "//author", "--limit", "1"])
    captured = capsys.readouterr().out
    assert "and 3 more" in captured


def test_plan_command_lists_every_translator(xml_file, capsys):
    code = main(["plan", xml_file, '/ProteinDatabase/ProteinEntry[protein]/reference/refinfo'])
    captured = capsys.readouterr().out
    assert code == 0
    for translator in ("dlabel", "split", "pushup", "unfold"):
        assert translator in captured


def test_experiment_fig12(capsys):
    code = main(["experiment", "fig12"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "shakespeare" in captured and "auction" in captured


def test_experiment_fig11(capsys):
    code = main(["experiment", "fig11"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "Figure 11" in captured
    assert "unfold" in captured


def test_experiment_sec42(capsys):
    code = main(["experiment", "sec42"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "QS3" in captured and "QA3" in captured


def test_experiment_fig16_small(capsys):
    code = main(["experiment", "fig16", "--replicate", "2"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "QA1" in captured


def test_unknown_experiment_is_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_query_defaults_to_the_planner(xml_file, capsys):
    code = main(["query", xml_file, "//protein/name"])
    captured = capsys.readouterr().out
    assert code == 0
    # The planner reports the concrete translator/engine it chose.
    assert "translator=auto" not in captured and "engine=auto" not in captured


def test_query_plans_exactly_once(xml_file, capsys, monkeypatch):
    """A plain planner-routed query must run one optimizer pass, not two."""
    from repro import cli as cli_module
    from repro.system import BLAS as RealBLAS

    created = []
    original = RealBLAS.from_file.__func__

    def capture(cls, path, build_sqlite=False):
        system = original(cls, path, build_sqlite)
        created.append(system)
        return system

    monkeypatch.setattr(cli_module.BLAS, "from_file", classmethod(capture))
    main(["query", xml_file, "//protein/name"])
    (system,) = created
    info = system.plan_cache.info()
    assert info["misses"] == 1 and info["hits"] == 0


def test_query_explain_prints_the_plan_and_costs(xml_file, capsys):
    code = main(["query", xml_file, "//protein/name", "--explain"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "EXPLAIN" in captured
    assert "candidates considered" in captured
    assert "actual: elements_read=" in captured


def test_experiment_explain(capsys):
    code = main(["experiment", "explain"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "Cost-based planner" in captured
    assert "QS2" in captured and "Q6" in captured
