"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from tests.conftest import PROTEIN_SAMPLE


@pytest.fixture()
def xml_file(tmp_path):
    path = tmp_path / "protein.xml"
    path.write_text(PROTEIN_SAMPLE, encoding="utf-8")
    return str(path)


def test_parser_requires_a_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_query_command_prints_results(xml_file, capsys):
    code = main(["query", xml_file, "//protein/name"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "3 result node(s)" in captured
    assert "cytochrome c [validated]" in captured


def test_query_command_with_plan_and_sql(xml_file, capsys):
    code = main([
        "query", xml_file, "//author", "--translator", "split",
        "--engine", "sqlite", "--show-plan", "--show-sql",
    ])
    captured = capsys.readouterr().out
    assert code == 0
    assert "QueryPlan[split]" in captured
    assert "SELECT DISTINCT" in captured


def test_query_command_respects_the_limit(xml_file, capsys):
    main(["query", xml_file, "//author", "--limit", "1"])
    captured = capsys.readouterr().out
    assert "and 3 more" in captured


def test_plan_command_lists_every_translator(xml_file, capsys):
    code = main(["plan", xml_file, '/ProteinDatabase/ProteinEntry[protein]/reference/refinfo'])
    captured = capsys.readouterr().out
    assert code == 0
    for translator in ("dlabel", "split", "pushup", "unfold"):
        assert translator in captured


def test_experiment_fig12(capsys):
    code = main(["experiment", "fig12"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "shakespeare" in captured and "auction" in captured


def test_experiment_fig11(capsys):
    code = main(["experiment", "fig11"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "Figure 11" in captured
    assert "unfold" in captured


def test_experiment_sec42(capsys):
    code = main(["experiment", "sec42"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "QS3" in captured and "QA3" in captured


def test_experiment_fig16_small(capsys):
    code = main(["experiment", "fig16", "--replicate", "2"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "QA1" in captured


def test_unknown_experiment_is_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])
