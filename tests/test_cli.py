"""Tests for the command-line interface."""

from __future__ import annotations

import os

import pytest

from repro.cli import build_parser, main
from tests.conftest import PROTEIN_SAMPLE


@pytest.fixture()
def xml_file(tmp_path):
    path = tmp_path / "protein.xml"
    path.write_text(PROTEIN_SAMPLE, encoding="utf-8")
    return str(path)


def test_parser_requires_a_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_query_command_prints_results(xml_file, capsys):
    code = main(["query", xml_file, "//protein/name"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "3 result node(s)" in captured
    assert "cytochrome c [validated]" in captured


def test_query_command_with_plan_and_sql(xml_file, capsys):
    code = main([
        "query", xml_file, "//author", "--translator", "split",
        "--engine", "sqlite", "--show-plan", "--show-sql",
    ])
    captured = capsys.readouterr().out
    assert code == 0
    assert "QueryPlan[split]" in captured
    assert "SELECT DISTINCT" in captured


def test_query_command_respects_the_limit(xml_file, capsys):
    main(["query", xml_file, "//author", "--limit", "1"])
    captured = capsys.readouterr().out
    assert "and 3 more" in captured


def test_plan_command_lists_every_translator(xml_file, capsys):
    code = main(["plan", xml_file, '/ProteinDatabase/ProteinEntry[protein]/reference/refinfo'])
    captured = capsys.readouterr().out
    assert code == 0
    for translator in ("dlabel", "split", "pushup", "unfold"):
        assert translator in captured


SECOND_SAMPLE = """
<ProteinDatabase>
  <ProteinEntry id="PX1">
    <protein><name>myoglobin</name></protein>
    <reference><refinfo><authors><author>Doe, J.</author></authors></refinfo></reference>
  </ProteinEntry>
</ProteinDatabase>
"""


@pytest.fixture()
def collection_dir(tmp_path):
    source = tmp_path / "incoming"
    source.mkdir()
    (source / "one.xml").write_text(PROTEIN_SAMPLE, encoding="utf-8")
    (source / "two.xml").write_text(SECOND_SAMPLE, encoding="utf-8")
    directory = tmp_path / "collection"
    code = main([
        "collection", "add", str(directory),
        str(source / "one.xml"), str(source / "two.xml"),
    ])
    assert code == 0
    return str(directory)


def test_collection_add_rejects_duplicates(collection_dir, tmp_path, capsys):
    duplicate = tmp_path / "incoming" / "one.xml"
    code = main(["collection", "add", collection_dir, str(duplicate)])
    captured = capsys.readouterr().out
    assert code == 1
    assert "already in the collection" in captured


def test_collection_add_batch_is_atomic(collection_dir, tmp_path, capsys):
    """A bad file anywhere in the batch must admit nothing."""
    import os

    good = tmp_path / "good.xml"
    good.write_text("<r><a>ok</a></r>", encoding="utf-8")
    bad = tmp_path / "bad.xml"
    bad.write_text("<r><unclosed></r>", encoding="utf-8")
    code = main(["collection", "add", collection_dir, str(good), str(bad)])
    captured = capsys.readouterr().out
    assert code == 1
    assert "cannot add bad.xml" in captured
    assert not os.path.exists(os.path.join(collection_dir, "good.xml"))


def test_collection_list(collection_dir, capsys):
    code = main(["collection", "list", collection_dir])
    captured = capsys.readouterr().out
    assert code == 0
    assert "one.xml" in captured and "two.xml" in captured
    assert "scheme group" in captured


def test_collection_query_attributes_results_per_document(collection_dir, capsys):
    code = main(["collection", "query", collection_dir, "//author"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "5 result node(s) across 2 document(s)" in captured
    assert "one.xml=4" in captured and "two.xml=1" in captured


def test_collection_query_serial_flag(collection_dir, capsys):
    code = main(["collection", "query", collection_dir, "//author", "--serial"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "serial" in captured


def test_collection_explain(collection_dir, capsys):
    code = main(["collection", "explain", collection_dir, "//protein/name"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "COLLECTION EXPLAIN" in captured
    assert "per-document cost estimates:" in captured
    assert "plan cache:" in captured


def test_collection_stats_shows_plan_cache_counters(collection_dir, capsys):
    code = main([
        "collection", "stats", collection_dir,
        "--query", "//author", "--query", "//author",
    ])
    captured = capsys.readouterr().out
    assert code == 0
    assert "documents: 2" in captured
    assert "plan cache:" in captured
    assert "hits=1" in captured


def test_collection_remove(collection_dir, capsys):
    code = main(["collection", "remove", collection_dir, "two.xml"])
    assert code == 0
    code = main(["collection", "query", collection_dir, "//author"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "4 result node(s) across 1 document(s)" in captured
    code = main(["collection", "remove", collection_dir, "two.xml"])
    assert code == 1


# -- persistent stores ---------------------------------------------------------------


@pytest.fixture()
def store_dir(collection_dir, tmp_path, capsys):
    store = str(tmp_path / "collection.store")
    code = main(["collection", "save", collection_dir, store])
    assert code == 0
    capsys.readouterr()
    return store


def test_collection_save_and_open(store_dir, capsys):
    code = main(["collection", "open", store_dir])
    captured = capsys.readouterr().out
    assert code == 0
    assert "2 document(s)" in captured
    assert "one.xml" in captured and "two.xml" in captured


def test_collection_query_detects_a_store(store_dir, capsys):
    code = main(["collection", "query", store_dir, "//author"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "result node(s) across 2 document(s)" in captured


def test_collection_stats_reports_lazy_loading(store_dir, capsys):
    code = main(["collection", "stats", store_dir])
    captured = capsys.readouterr().out
    assert code == 0
    assert "loaded: 0/2 partition(s)" in captured
    code = main(["collection", "stats", store_dir, "--query", "//author"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "loaded: 2/2 partition(s)" in captured


def test_collection_add_ingests_into_a_store(tmp_path, capsys):
    source = tmp_path / "three.xml"
    source.write_text(PROTEIN_SAMPLE, encoding="utf-8")
    store = str(tmp_path / "fresh.store")
    code = main(["collection", "add", store, str(source), "--store"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "added three.xml (doc 0)" in captured
    # The store now exists; a second add auto-detects it and rejects dupes.
    code = main(["collection", "add", store, str(source)])
    captured = capsys.readouterr().out
    assert code == 1
    assert "already in the collection" in captured


def test_failed_store_add_does_not_create_the_store(tmp_path, capsys):
    bad = tmp_path / "bad.xml"
    bad.write_text("<unclosed>", encoding="utf-8")
    store = str(tmp_path / "never.store")
    code = main(["collection", "add", store, str(bad), "--store"])
    captured = capsys.readouterr().out
    assert code == 1
    assert "cannot add bad.xml" in captured
    # Validation failed before anything touched disk: no half-created store
    # that would silently flip the path's semantics to store mode.
    assert not os.path.exists(store)


def test_store_flag_refuses_to_shadow_a_directory_collection(
    collection_dir, tmp_path, capsys
):
    source = tmp_path / "three.xml"
    source.write_text(PROTEIN_SAMPLE, encoding="utf-8")
    code = main(["collection", "add", collection_dir, str(source), "--store"])
    captured = capsys.readouterr().out
    assert code == 1
    assert "directory-mode collection" in captured
    # The existing members are still served (no MANIFEST.json was written).
    code = main(["collection", "query", collection_dir, "//author"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "across 2 document(s)" in captured


def test_directory_add_rejects_duplicates_of_any_extension(tmp_path, capsys):
    source = tmp_path / "notes.txt"  # valid XML despite the extension
    source.write_text(PROTEIN_SAMPLE, encoding="utf-8")
    directory = str(tmp_path / "dir")
    assert main(["collection", "add", directory, str(source)]) == 0
    capsys.readouterr()
    code = main(["collection", "add", directory, str(source)])
    captured = capsys.readouterr().out
    assert code == 1
    assert "already in the collection" in captured


def test_collection_remove_last_document_leaves_a_valid_store(store_dir, capsys):
    assert main(["collection", "remove", store_dir, "one.xml"]) == 0
    assert main(["collection", "remove", store_dir, "two.xml"]) == 0
    code = main(["collection", "query", store_dir, "//author"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "0 result node(s) across 0 document(s)" in captured
    code = main(["collection", "open", store_dir])
    captured = capsys.readouterr().out
    assert code == 0
    assert "0 document(s)" in captured


def test_experiment_fig12(capsys):
    code = main(["experiment", "fig12"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "shakespeare" in captured and "auction" in captured


def test_experiment_fig11(capsys):
    code = main(["experiment", "fig11"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "Figure 11" in captured
    assert "unfold" in captured


def test_experiment_sec42(capsys):
    code = main(["experiment", "sec42"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "QS3" in captured and "QA3" in captured


def test_experiment_fig16_small(capsys):
    code = main(["experiment", "fig16", "--replicate", "2"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "QA1" in captured


def test_unknown_experiment_is_rejected():
    with pytest.raises(SystemExit):
        main(["experiment", "fig99"])


def test_query_defaults_to_the_planner(xml_file, capsys):
    code = main(["query", xml_file, "//protein/name"])
    captured = capsys.readouterr().out
    assert code == 0
    # The planner reports the concrete translator/engine it chose.
    assert "translator=auto" not in captured and "engine=auto" not in captured


def test_query_plans_exactly_once(xml_file, capsys, monkeypatch):
    """A plain planner-routed query must run one optimizer pass, not two."""
    from repro import cli as cli_module
    from repro.system import BLAS as RealBLAS

    created = []
    original = RealBLAS.from_file.__func__

    def capture(cls, path, build_sqlite=False):
        system = original(cls, path, build_sqlite)
        created.append(system)
        return system

    monkeypatch.setattr(cli_module.BLAS, "from_file", classmethod(capture))
    main(["query", xml_file, "//protein/name"])
    (system,) = created
    info = system.plan_cache.info()
    assert info["misses"] == 1 and info["hits"] == 0


def test_query_explain_prints_the_plan_and_costs(xml_file, capsys):
    code = main(["query", xml_file, "//protein/name", "--explain"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "EXPLAIN" in captured
    assert "candidates considered" in captured
    assert "actual: elements_read=" in captured


def test_experiment_explain(capsys):
    code = main(["experiment", "explain"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "Cost-based planner" in captured
    assert "QS2" in captured and "Q6" in captured


# -- store error handling & formats --------------------------------------------------


def test_open_missing_store_prints_one_line_error(tmp_path, capsys):
    code = main(["collection", "open", str(tmp_path / "nowhere")])
    captured = capsys.readouterr().out
    assert code == 1
    assert captured.startswith("error:")
    assert "missing manifest" in captured


def test_corrupt_manifest_prints_one_line_error(store_dir, capsys):
    with open(os.path.join(store_dir, "MANIFEST.json"), "w", encoding="utf-8") as f:
        f.write("{ not json")
    for command in (["collection", "open", store_dir],
                    ["collection", "query", store_dir, "//author"],
                    ["collection", "stats", store_dir]):
        code = main(command)
        captured = capsys.readouterr().out
        assert code == 1, command
        assert captured.startswith("error:"), command


def test_truncated_partition_prints_one_line_error(store_dir, capsys):
    import glob

    (partition, *_) = sorted(glob.glob(os.path.join(store_dir, "partitions", "*")))
    with open(partition, "rb") as handle:
        blob = handle.read()
    with open(partition, "wb") as handle:
        handle.write(blob[: len(blob) // 3])
    code = main(["collection", "query", store_dir, "//author"])
    captured = capsys.readouterr().out
    assert code == 1
    assert captured.startswith("error:")
    assert "checksum" in captured or "truncated" in captured


def test_list_on_an_empty_directory_prints_one_line_error(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    code = main(["collection", "list", str(empty)])
    captured = capsys.readouterr().out
    assert code == 1
    assert captured.startswith("error:")


def test_remove_from_a_missing_store_prints_one_line_error(tmp_path, capsys):
    code = main(["collection", "query", str(tmp_path / "gone"), "//x"])
    captured = capsys.readouterr().out
    assert code == 1
    assert captured.startswith("error:")


def test_save_format_flag_writes_v1_json_partitions(collection_dir, tmp_path, capsys):
    import glob
    import json

    store = str(tmp_path / "v1.store")
    code = main(["collection", "save", collection_dir, store, "--format", "v1"])
    captured = capsys.readouterr().out
    assert code == 0
    assert "format v1" in captured
    partitions = glob.glob(os.path.join(store, "partitions", "*"))
    assert partitions and all(path.endswith(".json") for path in partitions)
    with open(partitions[0], encoding="utf-8") as handle:
        assert json.load(handle)["format"] == "blas-partition"


def test_save_defaults_to_v2_binary_partitions(store_dir):
    import glob

    partitions = glob.glob(os.path.join(store_dir, "partitions", "*"))
    assert partitions and all(path.endswith(".blas") for path in partitions)


def test_stats_reports_store_bytes_per_document(store_dir, capsys):
    code = main(["collection", "stats", store_dir])
    captured = capsys.readouterr().out
    assert code == 0
    assert "store size:" in captured
    assert "bytes/doc" in captured


def test_save_with_shards_and_raw_columns(collection_dir, tmp_path, capsys):
    store = str(tmp_path / "sharded.store")
    code = main([
        "collection", "save", collection_dir, store, "--shards", "2",
        "--raw-columns",
    ])
    captured = capsys.readouterr().out
    assert code == 0
    assert "2 shard(s)" in captured
    assert os.path.isdir(os.path.join(store, "shard-00"))
    assert os.path.isdir(os.path.join(store, "shard-01"))
    code = main(["collection", "query", store, "//author", "--count"])
    assert code == 0
    assert "5 result node(s)" in capsys.readouterr().out


def test_stats_reports_partition_cache_and_shards(collection_dir, tmp_path, capsys):
    store = str(tmp_path / "sharded.store")
    assert main(["collection", "save", collection_dir, store, "--shards", "2"]) == 0
    capsys.readouterr()
    code = main([
        "collection", "stats", store, "--cache-bytes", "1", "--query", "//author",
    ])
    captured = capsys.readouterr().out
    assert code == 0
    assert "partition cache:" in captured
    assert "1 byte budget" in captured
    assert "miss(es)" in captured
    assert "eviction(s)" in captured
    assert "shard-00:" in captured
    assert "shard-01:" in captured


def test_query_with_cache_bytes_matches_unbounded(store_dir, capsys):
    assert main(["collection", "query", store_dir, "//author", "--count"]) == 0
    unbounded = capsys.readouterr().out
    assert main([
        "collection", "query", store_dir, "//author", "--count",
        "--cache-bytes", "1",
    ]) == 0
    capped = capsys.readouterr().out
    assert "5 result node(s)" in capped
    assert capped.splitlines()[1] == unbounded.splitlines()[1]  # per-doc counts


def test_missing_shard_prints_one_line_error(collection_dir, tmp_path, capsys):
    store = str(tmp_path / "sharded.store")
    assert main(["collection", "save", collection_dir, store, "--shards", "2"]) == 0
    capsys.readouterr()
    import shutil

    shutil.rmtree(os.path.join(store, "shard-01"))
    for argv in (
        ["collection", "open", store],
        ["collection", "query", store, "//author"],
    ):
        code = main(argv)
        captured = capsys.readouterr().out
        assert code == 1
        lines = [line for line in captured.splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("error:")
        assert "shard-01" in lines[0]
