"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.core.indexer import index_text
from repro.datasets import build_dataset
from repro.system import BLAS
from repro.xmlkit.parser import parse_string

#: A small protein-repository document mirroring the paper's Figure 1.
PROTEIN_SAMPLE = """
<ProteinDatabase>
  <ProteinEntry id="PE1">
    <protein>
      <name>cytochrome c [validated]</name>
      <classification>
        <superfamily>cytochrome c</superfamily>
      </classification>
    </protein>
    <reference>
      <refinfo>
        <authors>
          <author>Evans, M.J.</author>
          <author>Li, Q.</author>
        </authors>
        <year>2001</year>
        <title>The human somatic cytochrome c gene</title>
      </refinfo>
    </reference>
  </ProteinEntry>
  <ProteinEntry id="PE2">
    <protein>
      <name>hemoglobin beta</name>
      <classification>
        <superfamily>globin</superfamily>
      </classification>
    </protein>
    <reference>
      <refinfo>
        <authors>
          <author>Smith, A.</author>
        </authors>
        <year>2001</year>
        <title>Another paper</title>
      </refinfo>
    </reference>
  </ProteinEntry>
  <ProteinEntry id="PE3">
    <protein>
      <name>cytochrome c2</name>
      <classification>
        <superfamily>cytochrome c</superfamily>
      </classification>
    </protein>
    <reference>
      <refinfo>
        <authors>
          <author>Evans, M.J.</author>
        </authors>
        <year>1999</year>
        <title>An older paper</title>
      </refinfo>
    </reference>
  </ProteinEntry>
</ProteinDatabase>
"""

#: The paper's running example query (Figure 2).
EXAMPLE_QUERY = (
    '/ProteinDatabase/ProteinEntry[protein//superfamily = "cytochrome c"]'
    '/reference/refinfo[//author = "Evans, M.J." and year = "2001"]/title'
)

#: A tiny document exercising nesting, attributes, repeated tags and values.
TINY_SAMPLE = """
<a>
  <b id="1"><c>x</c><c>y</c></b>
  <b id="2"><d><c>z</c></d></b>
  <e>plain</e>
</a>
"""


@pytest.fixture(autouse=True)
def lockwatch_clean(request):
    """With ``REPRO_LOCKWATCH=1``, fail any test that trips the race detector.

    Instrumented collections/daemons report lock-order inversions and
    unguarded writes to the process-wide
    :data:`repro.analysis.lockwatch.WATCH`; this fixture turns any new
    report during a test into that test's failure.
    """
    if (
        not os.environ.get("REPRO_LOCKWATCH")
        # Tests that provoke violations on purpose manage WATCH themselves.
        or "lockwatch_env" in request.fixturenames
    ):
        yield
        return
    from repro.analysis.lockwatch import WATCH

    before = WATCH.violations()
    yield
    after = WATCH.violations()
    assert after == before, f"lockwatch reported race(s): {WATCH.report()!r}"


@pytest.fixture(scope="session")
def protein_xml() -> str:
    return PROTEIN_SAMPLE


@pytest.fixture(scope="session")
def protein_document():
    return parse_string(PROTEIN_SAMPLE, name="protein-sample")


@pytest.fixture(scope="session")
def protein_indexed():
    return index_text(PROTEIN_SAMPLE, name="protein-sample")


@pytest.fixture(scope="session")
def protein_system():
    return BLAS.from_xml(PROTEIN_SAMPLE, name="protein-sample")


@pytest.fixture(scope="session")
def tiny_document():
    return parse_string(TINY_SAMPLE, name="tiny")


@pytest.fixture(scope="session")
def tiny_indexed():
    return index_text(TINY_SAMPLE, name="tiny")


@pytest.fixture(scope="session")
def shakespeare_document():
    return build_dataset("shakespeare", scale=1)


@pytest.fixture(scope="session")
def auction_document():
    return build_dataset("auction", scale=1)


@pytest.fixture(scope="session")
def protein_dataset_document():
    return build_dataset("protein", scale=1)
