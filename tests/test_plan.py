"""Tests for the logical plan IR."""

from __future__ import annotations

import pytest

from repro.exceptions import PlanError
from repro.translate.plan import (
    ConjunctivePlan,
    JoinSpec,
    QueryPlan,
    SelectionKind,
    SelectionSpec,
    single_branch_plan,
)


def selection(alias, kind=SelectionKind.TAG, **kwargs):
    defaults = {"tag": "x"} if kind is SelectionKind.TAG else {}
    defaults.update(kwargs)
    return SelectionSpec(alias=alias, kind=kind, **defaults)


def test_plabel_selections_require_bounds():
    with pytest.raises(PlanError):
        SelectionSpec(alias="T1", kind=SelectionKind.PLABEL_EQ)
    with pytest.raises(PlanError):
        SelectionSpec(alias="T1", kind=SelectionKind.PLABEL_RANGE, plabel_low=3)


def test_selection_kind_flags():
    eq = SelectionSpec(alias="T1", kind=SelectionKind.PLABEL_EQ, plabel_low=5)
    rng = SelectionSpec(alias="T2", kind=SelectionKind.PLABEL_RANGE, plabel_low=1, plabel_high=9)
    assert eq.is_equality and not eq.is_range
    assert rng.is_range and not rng.is_equality


def test_join_gap_validation():
    with pytest.raises(PlanError):
        JoinSpec(ancestor="T1", descendant="T2", level_gap=0)
    with pytest.raises(PlanError):
        JoinSpec(ancestor="T1", descendant="T2", min_level_gap=0)


def test_duplicate_aliases_are_rejected():
    with pytest.raises(PlanError):
        ConjunctivePlan(
            selections=[selection("T1"), selection("T1")],
            joins=[],
            return_alias="T1",
        )


def test_return_alias_must_have_a_selection():
    with pytest.raises(PlanError):
        ConjunctivePlan(selections=[selection("T1")], joins=[], return_alias="T9")


def test_joins_must_reference_known_aliases():
    with pytest.raises(PlanError):
        ConjunctivePlan(
            selections=[selection("T1"), selection("T2")],
            joins=[JoinSpec(ancestor="T1", descendant="T5")],
            return_alias="T1",
        )


def test_join_order_connects_the_graph():
    branch = ConjunctivePlan(
        selections=[selection("T1"), selection("T2"), selection("T3")],
        joins=[
            JoinSpec(ancestor="T2", descendant="T3"),
            JoinSpec(ancestor="T1", descendant="T2"),
        ],
        return_alias="T3",
    )
    ordered = branch.join_order()
    assert len(ordered) == 2
    seen = {ordered[0].ancestor, ordered[0].descendant}
    assert ordered[1].ancestor in seen or ordered[1].descendant in seen


def test_disconnected_join_graph_is_detected():
    branch = ConjunctivePlan(
        selections=[selection(alias) for alias in ("T1", "T2", "T3", "T4")],
        joins=[
            JoinSpec(ancestor="T1", descendant="T2"),
            JoinSpec(ancestor="T3", descendant="T4"),
        ],
        return_alias="T1",
    )
    with pytest.raises(PlanError):
        branch.join_order()


def test_empty_detection():
    branch = ConjunctivePlan(
        selections=[selection("T1", SelectionKind.EMPTY)], joins=[], return_alias="T1"
    )
    plan = QueryPlan(branches=[branch], translator="split")
    assert branch.is_empty
    assert plan.is_empty
    assert plan.non_empty_branches() == []
    assert plan.metrics().d_joins == 0


def test_metrics_count_selection_kinds():
    branch = ConjunctivePlan(
        selections=[
            SelectionSpec(alias="T1", kind=SelectionKind.PLABEL_EQ, plabel_low=1),
            SelectionSpec(alias="T2", kind=SelectionKind.PLABEL_RANGE, plabel_low=1, plabel_high=5),
            selection("T3"),
        ],
        joins=[JoinSpec(ancestor="T1", descendant="T2"), JoinSpec(ancestor="T2", descendant="T3")],
        return_alias="T3",
    )
    metrics = QueryPlan(branches=[branch], translator="x").metrics()
    assert metrics.d_joins == 2
    assert metrics.equality_selections == 1
    assert metrics.range_selections == 1
    assert metrics.tag_selections == 1
    assert metrics.union_branches == 1
    assert set(metrics.as_dict()) == {
        "d_joins", "equality_selections", "range_selections", "tag_selections", "union_branches",
    }


def test_describe_mentions_every_alias_and_join():
    plan = single_branch_plan(
        selections=[
            SelectionSpec(alias="T1", kind=SelectionKind.PLABEL_EQ, plabel_low=7, description="/a"),
            selection("T2", data_eq="v"),
        ],
        joins=[JoinSpec(ancestor="T1", descendant="T2", level_gap=2)],
        return_alias="T2",
        translator="pushup",
        query_text="/a/b",
    )
    text = plan.describe()
    assert "T1" in text and "T2" in text
    assert "level gap 2" in text
    assert "pushup" in text
    assert "data = 'v'" in text


def test_alias_map(protein_system):
    plan = protein_system.translate("/ProteinDatabase/ProteinEntry", "pushup").plan
    branch = plan.branches[0]
    assert set(branch.alias_map) == {s.alias for s in branch.selections}
