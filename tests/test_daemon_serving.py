"""Integration tests for the daemon's three-layer read-serving fast path.

Layer by layer: result-cache hits replay the leader's exact bytes
(byte-identity over HTTP), single-flight coalesces a thundering herd onto
one execution (proved by the ``query_executions`` counter), and the
morsel-parallel cold path stays byte-identical to serial execution.  The
closing property test interleaves three readers with a committing writer
and asserts the measured staleness counter never moves.
"""

import json
import threading
import urllib.request

import pytest

from repro.collection import BLASCollection
from repro.server import DaemonServer
from repro.server.daemon import DaemonServer as _DaemonServerClass

DOC = (
    "<lib><book><title>alpha</title></book>"
    "<book><title>beta</title></book></lib>"
)


def _fetch(url):
    """Return (status, raw-bytes, parsed-json) for a GET."""
    with urllib.request.urlopen(url, timeout=10) as response:
        raw = response.read()
    return response.status, raw, json.loads(raw.decode("utf-8"))


def _result_key_of(result):
    return (
        result.count,
        result.stats.elements_read,
        tuple(
            (r.doc_id, r.tag, r.start, r.level, r.data) for r in result.records
        ),
    )


def _payload_key_of(payload):
    return (
        payload["count"],
        payload["elements_read"],
        tuple(
            (r["doc_id"], r["tag"], r["start"], r["level"], r["data"])
            for r in payload["records"]
        ),
    )


@pytest.fixture
def daemon(tmp_path):
    """A daemon over a freshly saved four-document store."""
    store = str(tmp_path / "store")
    collection = BLASCollection()
    for index in range(4):
        collection.add_xml(DOC, name=f"doc-{index}")
    collection.save(store)
    server = DaemonServer(BLASCollection.open(store))
    server.start()
    yield server
    server.stop()


# -- layer 1: the result cache -------------------------------------------------------


def test_repeat_query_served_from_cache_byte_identically(daemon):
    url = daemon.url + "/query?q=//book/title&serial=1"
    status, first, _ = _fetch(url)
    assert status == 200
    status, second, _ = _fetch(url)
    assert status == 200
    assert second == first  # byte-identical replay, elapsed_ms included
    stats = daemon.collection.result_cache.cache_stats()
    assert stats["hits"] == 1 and stats["puts"] == 1
    assert stats["stale_served"] == 0
    assert daemon.server_stats()["query_executions"] == 1


def test_equivalent_spellings_share_one_cache_slot(daemon):
    _fetch(daemon.url + "/query?q=//book/title&serial=1")
    # Same canonical query text -> same key -> no second execution.
    _fetch(daemon.url + "/query?q=//%20book%20/%20title&serial=1")
    assert daemon.server_stats()["query_executions"] == 1


def test_no_result_cache_param_bypasses_the_cache(daemon):
    url = daemon.url + "/query?q=//book/title&serial=1&no_result_cache=1"
    _, first, _ = _fetch(url)
    _, second, _ = _fetch(url)
    # Both executed (elapsed_ms differs), nothing was cached.
    assert daemon.server_stats()["query_executions"] == 2
    assert daemon.collection.result_cache.cache_stats()["entries"] == 0
    assert _payload_key_of(json.loads(first)) == _payload_key_of(json.loads(second))


def test_commit_invalidates_by_version(daemon):
    url = daemon.url + "/query?q=//book/title&serial=1"
    _, before, _ = _fetch(url)
    request = urllib.request.Request(
        daemon.url + "/add",
        data=json.dumps({"xml": DOC, "name": "later"}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10):
        pass
    _, after, payload = _fetch(url)
    assert payload["version"] == json.loads(before)["version"] + 1
    assert payload["count"] == json.loads(before)["count"] + 2
    # Two executions: the commit made a new version, hence a new key.
    assert daemon.server_stats()["query_executions"] == 2
    assert daemon.collection.result_cache.cache_stats()["stale_served"] == 0


def test_stats_surface_result_cache_and_serving_counters(daemon):
    _fetch(daemon.url + "/query?q=//book/title&serial=1")
    _fetch(daemon.url + "/query?q=//book/title&serial=1")
    _, _, stats = _fetch(daemon.url + "/stats")
    result_cache = stats["collection"]["result_cache"]
    assert result_cache["hits"] == 1 and result_cache["stale_served"] == 0
    server = stats["server"]
    assert server["query_executions"] == 1
    assert {"coalesced_leaders", "coalesced_followers", "follower_fallbacks"} <= set(server)


# -- layer 2: single-flight coalescing -----------------------------------------------


def test_thundering_herd_executes_exactly_once(daemon, monkeypatch):
    release = threading.Event()
    original = _DaemonServerClass._execute_query

    def slow_execute(self, request):
        assert release.wait(timeout=30)
        return original(self, request)

    monkeypatch.setattr(_DaemonServerClass, "_execute_query", slow_execute)
    herd = 8
    results = [None] * herd

    def hit(slot):
        results[slot] = daemon.handle_query({"q": "//book/title", "serial": "1"})

    threads = [threading.Thread(target=hit, args=(slot,)) for slot in range(herd)]
    for thread in threads:
        thread.start()
    # Wait until all 7 followers have joined the leader's flight, then
    # let the leader run — fully deterministic coalescing.
    for _ in range(3000):
        if daemon.server_stats()["coalesced_followers"] == herd - 1:
            break
        threading.Event().wait(0.01)
    assert daemon.server_stats()["coalesced_followers"] == herd - 1
    release.set()
    for thread in threads:
        thread.join(timeout=30)
    bodies = {body for status, body in results}
    statuses = {status for status, body in results}
    assert statuses == {200} and len(bodies) == 1
    stats = daemon.server_stats()
    assert stats["query_executions"] == 1
    assert stats["coalesced_leaders"] == 1
    assert stats["coalesced_followers"] == herd - 1
    assert stats["follower_fallbacks"] == 0


def test_followers_fall_back_when_the_leader_fails(daemon, monkeypatch):
    release = threading.Event()
    original = _DaemonServerClass._execute_query
    calls = []

    def failing_execute(self, request):
        calls.append(1)
        if len(calls) == 1:  # only the leader fails
            assert release.wait(timeout=30)
            raise ValueError("leader broke")
        return original(self, request)

    monkeypatch.setattr(_DaemonServerClass, "_execute_query", failing_execute)
    outcomes = [None, None]

    def leader():
        try:
            daemon.handle_query({"q": "//book/title", "serial": "1"})
            outcomes[0] = "ok"
        except ValueError:
            outcomes[0] = "error"

    def follower():
        outcomes[1] = daemon.handle_query({"q": "//book/title", "serial": "1"})[0]

    leader_thread = threading.Thread(target=leader)
    leader_thread.start()
    for _ in range(3000):
        if daemon.server_stats()["query_executions"] + len(calls) >= 1:
            break
        threading.Event().wait(0.01)
    follower_thread = threading.Thread(target=follower)
    follower_thread.start()
    for _ in range(3000):
        if daemon.server_stats()["coalesced_followers"] == 1:
            break
        threading.Event().wait(0.01)
    release.set()
    leader_thread.join(timeout=30)
    follower_thread.join(timeout=30)
    # The leader's error is its own; the follower recovered by executing.
    assert outcomes[0] == "error" and outcomes[1] == 200
    stats = daemon.server_stats()
    assert stats["follower_fallbacks"] == 1
    # Errors are never cached.
    assert daemon.collection.result_cache.cache_stats()["stale_served"] == 0


# -- layer 3: morsel-parallel cold execution -----------------------------------------


def _build_sharded_store(tmp_path, documents=6):
    store = str(tmp_path / "sharded")
    collection = BLASCollection()
    for index in range(documents):
        xml = "<lib>" + "".join(
            f"<book><title>t{index}-{n}</title><year>{1990 + n}</year></book>"
            for n in range(40)
        ) + "</lib>"
        collection.add_xml(xml, name=f"doc-{index}")
    collection.save(store, shards=3)
    return store


def test_morsel_parallel_matches_serial_and_unbounded(tmp_path):
    store = _build_sharded_store(tmp_path)
    query = "//book/title"
    serial = BLASCollection.open(store).query(query, parallel=False)
    morsel = BLASCollection.open(store).query(query, parallel=True, workers=4)
    no_morsel = BLASCollection.open(store).query(
        query, parallel=True, workers=4, morsel=False
    )
    bounded = BLASCollection.open(store, cache_bytes=4096).query(
        query, parallel=True, workers=4
    )
    expected = _result_key_of(serial)
    assert _result_key_of(morsel) == expected
    assert _result_key_of(no_morsel) == expected
    assert _result_key_of(bounded) == expected


def test_morsel_warmup_only_touches_cold_partitions(tmp_path):
    store = _build_sharded_store(tmp_path, documents=3)
    collection = BLASCollection.open(store)
    assert collection.store.cold_doc_ids(collection.doc_ids()) == [0, 1, 2]
    collection.query("//book/title", parallel=True, workers=4)
    # Everything warmed: a repeat query has no cold partitions to slice.
    assert collection.store.cold_doc_ids(collection.doc_ids()) == []


# -- the measured guarantee: stale_served stays 0 under writes -----------------------


def test_three_readers_one_writer_never_serve_stale(daemon):
    expected = {}  # version -> expected //book/title count
    expected_lock = threading.Lock()
    with expected_lock:
        expected[daemon.collection.version] = len(daemon.collection) * 2
    stop = threading.Event()
    failures = []

    def writer():
        for round_number in range(25):
            name = f"churn-{round_number}"
            daemon.handle_add({"xml": DOC, "name": name})
            with expected_lock:
                expected[daemon.collection.version] = len(daemon.collection) * 2
            daemon.handle_remove({"ref": name})
            with expected_lock:
                expected[daemon.collection.version] = len(daemon.collection) * 2
        stop.set()

    def reader():
        while not stop.is_set():
            status, body = daemon.handle_query({"q": "//book/title", "serial": "1"})
            payload = json.loads(body)
            observed = (payload["version"], payload["count"])
            with expected_lock:
                want = expected.get(observed[0])
            # `want` can be momentarily unrecorded (reader beat the
            # writer's bookkeeping); re-check those after the join.
            if want is not None and want != observed[1]:
                failures.append(observed)

    threads = [threading.Thread(target=writer)] + [
        threading.Thread(target=reader) for _ in range(3)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert failures == []
    stats = daemon.collection.result_cache.cache_stats()
    assert stats["stale_served"] == 0
    assert daemon.server_stats()["follower_fallbacks"] == 0


# -- plan budget threading ------------------------------------------------------------


def test_server_plan_budget_default_applies(tmp_path):
    store = str(tmp_path / "budget-store")
    collection = BLASCollection()
    collection.add_xml(DOC, name="a")
    collection.save(store)
    server = DaemonServer(BLASCollection.open(store), plan_budget_ms=0.0)
    server.start()
    try:
        status, _, explained = _fetch(server.url + "/explain?q=//book/title")
        assert status == 200 and explained["explain"]
        status, _, payload = _fetch(server.url + "/query?q=//book/title&serial=1")
        assert status == 200 and payload["count"] == 2
        # A request-level budget still overrides the server default.
        status, _, _ = _fetch(
            server.url + "/query?q=//book/title&serial=1&plan_budget_ms=100"
        )
        assert status == 200
    finally:
        server.stop()
