"""Auction scalability study: Figures 16-18 in miniature.

Replicates the XMark-like auction dataset a growing number of times and runs
the three Figure 10 auction queries (suffix path QA1, path QA2, twig QA3) on
the holistic twig-join engine under D-labeling, Split and Push-Up, printing
execution time and elements read per replication factor — the same series
the paper plots in Figures 16, 17 and 18.

Run with::

    python examples/auction_scalability.py [max_replication]
"""

from __future__ import annotations

import sys

from repro.bench.harness import build_bench_system
from repro.bench.reporting import format_table
from repro.datasets.queries import strip_value_predicates

TRANSLATORS = ("dlabel", "split", "pushup")
QUERIES = ("QA1", "QA2", "QA3")


def main(max_replication: int = 6) -> None:
    replications = [r for r in (1, 2, 4, 6, 8, 10) if r <= max_replication] or [1]
    for query_name in QUERIES:
        rows = []
        for replication in replications:
            bench = build_bench_system("auction", scale=1, replicate=replication)
            query = strip_value_predicates(bench.query_named(query_name))
            row = [f"x{replication} ({bench.system.summary()['nodes']} nodes)"]
            for translator in TRANSLATORS:
                result = bench.system.query(query, translator=translator, engine="twig")
                row.append(f"{result.elapsed_seconds * 1000:.1f} ms / {result.stats.elements_read}")
            rows.append(row)
        print(format_table(
            ["replication"] + [f"{t} (time / elements)" for t in TRANSLATORS],
            rows,
            title=f"{query_name} on the twig-join engine (value predicates removed)",
        ))
        print()

    print(
        "Expected shape (paper Figures 16-18): D-labeling reads grow linearly\n"
        "with the data and dominate; Split == Push-Up on QA1/QA2; Push-Up reads\n"
        "strictly fewer elements than Split on the twig query QA3."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
