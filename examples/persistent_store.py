"""The persistent collection store: save once, open in O(manifest).

Builds the three bundled datasets, ingests them into a
:class:`~repro.collection.BLASCollection`, saves the collection to an
on-disk store, and then:

* times cold open against full re-indexing (the store wins by orders of
  magnitude because open reads only the manifest);
* shows that partitions load lazily — nothing is resident until the first
  query touches it — and that the opened collection answers byte-identically
  (same results, same access counters, same chosen plans);
* appends a document to the bound store and removes one, demonstrating the
  incremental persistence (only the touched partition file is rewritten,
  the manifest swap is atomic).

Run with::

    python examples/persistent_store.py [scale]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro import BLASCollection
from repro.datasets import build_dataset
from repro.xmlkit.writer import write_document

DATASETS = ("shakespeare", "protein", "auction")
QUERY = "//name"


def main() -> None:
    """Run the walkthrough."""
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    workdir = Path(tempfile.mkdtemp(prefix="blas-store-"))
    files = []
    for name in DATASETS:
        path = workdir / f"{name}.xml"
        write_document(build_dataset(name, scale=scale), str(path))
        files.append(path)

    # -- index, query, save ----------------------------------------------------
    started = time.perf_counter()
    collection = BLASCollection()
    for path in files:
        collection.add_file(str(path), name=path.name)
    index_seconds = time.perf_counter() - started
    baseline = collection.query(QUERY)

    store = workdir / "corpus.store"
    collection.save(str(store))
    print(f"indexed {len(collection)} documents ({collection.store.node_count} nodes) "
          f"in {index_seconds * 1000:.1f} ms; saved to {store}")

    # -- cold open is O(manifest) ----------------------------------------------
    started = time.perf_counter()
    reopened = BLASCollection.open(str(store))
    open_seconds = time.perf_counter() - started
    print(f"cold open: {open_seconds * 1000:.2f} ms "
          f"({index_seconds / open_seconds:.0f}x faster than re-indexing); "
          f"loaded partitions: {reopened.stats()['loaded_documents']}/{len(reopened)}")

    answer = reopened.query(QUERY)
    assert answer.starts == baseline.starts
    assert answer.stats.as_dict() == baseline.stats.as_dict()
    print(f"first query loaded {reopened.stats()['loaded_documents']}/{len(reopened)} "
          f"partitions and matched the never-saved collection exactly "
          f"({answer.count} results, {answer.stats.elements_read} elements read)")

    # -- incremental append / remove -------------------------------------------
    extra = workdir / "extra.xml"
    write_document(build_dataset("protein", scale=scale, seed=11), str(extra))
    doc_id = reopened.add_file(str(extra), name="extra.xml")
    print(f"appended extra.xml as doc {doc_id} "
          f"(one new partition file + atomic manifest swap)")
    reopened.remove("extra.xml")
    print("removed extra.xml (manifest swapped first, partition file deleted after)")

    final = BLASCollection.open(str(store))
    assert final.query(QUERY).starts == baseline.starts
    print(f"reopened store answers identically: {final.query(QUERY).count} results")


if __name__ == "__main__":
    main()
