"""Protein-repository search: the paper's motivating scenario at scale.

The paper's introduction imagines a biologist looking for "cytochrome c"
family proteins described in a 2001 paper by Evans, M.J.  This example
generates the synthetic protein dataset, indexes it, and compares the four
translators on the motivating query and the Figure 10 protein workload
(QP1-QP3), reporting result counts, elements read and wall-clock times.

Run with::

    python examples/protein_search.py [scale]
"""

from __future__ import annotations

import sys
import time

from repro import BLAS
from repro.bench.reporting import format_table
from repro.datasets import build_dataset
from repro.datasets.queries import EXAMPLE_QUERY, PROTEIN_QUERIES

TRANSLATORS = ("dlabel", "split", "pushup", "unfold")


def main(scale: int = 1) -> None:
    print(f"Generating the protein dataset at scale {scale} ...")
    document = build_dataset("protein", scale=scale)
    started = time.perf_counter()
    system = BLAS.from_document(document)
    print(f"Indexed {system.summary()['nodes']} nodes in {time.perf_counter() - started:.2f}s")
    print()

    workload = dict(PROTEIN_QUERIES)
    workload["Q (Figure 2)"] = EXAMPLE_QUERY

    for name, query in workload.items():
        rows = []
        for translator in TRANSLATORS:
            result = system.query(query, translator=translator, engine="memory")
            rows.append(
                [
                    translator,
                    result.count,
                    result.stats.elements_read,
                    result.stats.djoins_executed,
                    f"{result.elapsed_seconds * 1000:.2f} ms",
                ]
            )
        print(format_table(
            ["translator", "results", "elements read", "D-joins", "time"],
            rows,
            title=f"{name}: {query}",
        ))
        print()

    # Show what the biologist actually gets back.
    answer = system.query(EXAMPLE_QUERY, translator="unfold")
    print("Titles of matching 2001 papers by Evans, M.J. about cytochrome c proteins:")
    for title in answer.values()[:5]:
        print("  -", title)
    if answer.count > 5:
        print(f"  ... and {answer.count - 5} more")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
