"""Querying collections: many documents, one store, one query.

Writes the synthetic Shakespeare and protein datasets to disk (two
documents each), stream-ingests the four files into a
:class:`~repro.collection.BLASCollection`, and then:

* fans one query out across every document — serially and in parallel —
  showing per-document result attribution and that both modes agree;
* shows a query that only one corpus can answer (zero-hit documents are
  still attributed);
* prints the collection EXPLAIN: one plan per scheme group, priced on
  collection-merged statistics and re-priced per document, plus the
  plan-cache counters.

Run with::

    python examples/collection_search.py [scale]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

from repro import BLASCollection
from repro.bench.reporting import format_table
from repro.datasets import build_dataset
from repro.xmlkit.writer import write_document


def main(scale: int = 1) -> None:
    workdir = Path(tempfile.mkdtemp(prefix="blas-collection-"))
    print(f"Writing datasets to {workdir} ...")
    files = []
    for corpus in ("shakespeare", "protein"):
        for seed in (1, 2):
            path = workdir / f"{corpus}-{seed}.xml"
            write_document(build_dataset(corpus, scale=scale, seed=seed), str(path))
            files.append(path)

    collection = BLASCollection()
    started = time.perf_counter()
    for path in files:
        collection.add_file(str(path), name=path.name)
    elapsed = time.perf_counter() - started
    stats = collection.stats()
    print(
        f"Stream-ingested {stats['documents']} documents "
        f"({stats['nodes']} nodes, {stats['scheme_groups']} scheme groups) "
        f"in {elapsed:.2f}s"
    )
    print()

    print("Documents:")
    rows = [
        [row["doc_id"], row["name"], row["nodes"], row["tags"], row["scheme_group"]]
        for row in collection.documents()
    ]
    print(format_table(["doc", "name", "nodes", "tags", "scheme group"], rows))
    print()

    for query in ("//TITLE", "//protein/name", "//SPEECH[SPEAKER]/LINE"):
        serial = collection.query(query, parallel=False)
        parallel = collection.query(query, parallel=True, workers=4)
        assert serial.starts == parallel.starts, "parallel fan-out must agree with serial"
        attribution = ", ".join(
            f"{dr.name}={dr.count}" for dr in serial.per_document
        )
        print(
            f"{query}: {serial.count} results "
            f"(serial {serial.elapsed_seconds * 1000:.1f} ms, "
            f"parallel {parallel.elapsed_seconds * 1000:.1f} ms)"
        )
        print(f"  per document: {attribution}")
    print()

    print(collection.explain("//protein/name"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
