"""Quickstart: index a small XML document and run XPath queries with BLAS.

This walks through the pipeline of the paper's Figure 6 on the protein
repository fragment from the paper's introduction (Figure 1): index the
document (P-labels + D-labels + values), look at the labels, translate the
running-example query with each translator, and execute it on each engine.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import BLAS

PROTEIN_XML = """
<ProteinDatabase>
  <ProteinEntry>
    <protein>
      <name>cytochrome c [validated]</name>
      <classification>
        <superfamily>cytochrome c</superfamily>
      </classification>
    </protein>
    <reference>
      <refinfo>
        <authors>
          <author>Evans, M.J.</author>
        </authors>
        <year>2001</year>
        <title>The human somatic cytochrome c gene</title>
      </refinfo>
    </reference>
  </ProteinEntry>
  <ProteinEntry>
    <protein>
      <name>hemoglobin beta</name>
      <classification>
        <superfamily>globin</superfamily>
      </classification>
    </protein>
    <reference>
      <refinfo>
        <authors>
          <author>Smith, A.</author>
        </authors>
        <year>2001</year>
        <title>A different paper</title>
      </refinfo>
    </reference>
  </ProteinEntry>
</ProteinDatabase>
"""

#: The paper's motivating query (Figure 2): the title of the 2001 paper by
#: Evans, M.J. about a protein in the cytochrome c family.
QUERY = (
    '/ProteinDatabase/ProteinEntry[protein//superfamily = "cytochrome c"]'
    '/reference/refinfo[//author = "Evans, M.J." and year = "2001"]/title'
)


def main() -> None:
    # 1. Index the document: every node gets <plabel, start, end, level, data>.
    system = BLAS.from_xml(PROTEIN_XML, name="protein-quickstart")
    print("Indexed document:", system.summary())
    print()

    print("A few node records (SP clustering order):")
    for record in system.indexed.records_by_sp_order()[:6]:
        print(
            f"  tag={record.tag:<14} plabel={record.plabel:<12} "
            f"D-label=({record.start},{record.end},{record.level}) data={record.data!r}"
        )
    print()

    # 2. Simple suffix-path queries are single selections on P-labels.
    names = system.query("//protein/name")
    print("//protein/name ->", names.values())
    rooted = system.query("/ProteinDatabase/ProteinEntry/protein/name")
    print("/ProteinDatabase/ProteinEntry/protein/name ->", rooted.values())
    print()

    # 3. The running example query under each translator.
    for translator in ("dlabel", "split", "pushup", "unfold"):
        outcome = system.translate(QUERY, translator)
        metrics = outcome.plan.metrics()
        print(
            f"{translator:<7} D-joins={metrics.d_joins}  "
            f"equality selections={metrics.equality_selections}  "
            f"range selections={metrics.range_selections}"
        )
    print()

    # 4. Execute on every engine and check they agree.
    for engine in ("memory", "twig", "sqlite"):
        result = system.query(QUERY, translator="pushup", engine=engine)
        print(f"engine={engine:<7} results={result.values()}  "
              f"elements read={result.stats.elements_read}")
    print()

    # 5. Inspect the generated SQL and the plan description.
    outcome = system.translate(QUERY, "pushup")
    print("Push-Up plan:")
    print(outcome.plan.describe())
    print()
    print("Generated SQL (truncated):")
    print(outcome.sql[:400] + ("..." if len(outcome.sql) > 400 else ""))


if __name__ == "__main__":
    main()
