"""Walkthrough of the cost-based planner and its EXPLAIN output.

The seed reproduction made *you* pick the translator and engine.  This
example shows the layer added on top: ``BLAS.query(q)`` now defaults to
``translator="auto", engine="auto"``, routing the query through the planner,
which prices every (translator, join order, engine) candidate with exact
element counts from the catalog histograms and lowers the cheapest to a
pipelined physical-operator plan.

Run with::

    PYTHONPATH=src python examples/explain_plans.py
"""

from __future__ import annotations

from repro import BLAS
from repro.datasets import build_dataset
from repro.datasets.queries import SHAKESPEARE_QUERIES

SEPARATOR = "-" * 72


def main() -> None:
    # A generated Shakespeare corpus, as in the paper's evaluation (§5.1).
    system = BLAS.from_document(build_dataset("shakespeare", scale=1, seed=7))

    for name, query in SHAKESPEARE_QUERIES.items():
        print(SEPARATOR)
        print(f"{name}: {query}")
        print(SEPARATOR)

        # 1. Plan through the optimizer.  The PlannedQuery records every
        #    candidate considered and the chosen physical operator tree.
        planned = system.plan_query(query)

        # 2. Execute.  With auto defaults, query() reuses the cached plan.
        auto = system.query(query)

        # 3. EXPLAIN: candidates, the chosen pipelined plan, and the
        #    estimated cost next to the actual counters.
        print(planned.explain(actual=auto))

        # 4. Compare against the seed's fixed choice (Push-Up + memory).
        seed = system.query(query, translator="pushup", engine="memory")
        assert auto.starts == seed.starts  # plans change, answers never do
        print(
            f"  seed default: pushup/memory visited {seed.stats.elements_read} "
            f"elements, {seed.stats.comparisons} join comparisons"
        )
        print(
            f"  planner pick: {auto.translator}/{auto.engine} visited "
            f"{auto.stats.elements_read} elements, "
            f"{auto.stats.comparisons} join comparisons"
        )
        print()

    # The plan cache: the second planning of any query is a hit.
    again = system.plan_query(SHAKESPEARE_QUERIES["QS1"])
    print(SEPARATOR)
    print(f"plan cache: {system.plan_cache.info()} (last lookup hit={again.cache_hit})")


if __name__ == "__main__":
    main()
