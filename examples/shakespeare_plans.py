"""Shakespeare query-plan anatomy: Figure 11 regenerated.

The paper's Figure 11 shows the relational plans the four approaches produce
for QS3 (``/PLAYS/PLAY/ACT/SCENE[TITLE = "SCENE III. A public place."]//LINE``):
5 D-joins for D-labeling versus 2 for the BLAS translators, and a shift from
range selections (Split) to equality selections (Unfold).  This example
prints each plan, its metrics and its generated SQL over the synthetic
Shakespeare dataset, then runs all of them on the SQLite engine to show they
agree (and how long each takes).

Run with::

    python examples/shakespeare_plans.py
"""

from __future__ import annotations

from repro import BLAS
from repro.bench.reporting import format_table
from repro.datasets import build_dataset
from repro.datasets.queries import SHAKESPEARE_QUERIES

TRANSLATORS = ("dlabel", "split", "pushup", "unfold")


def main() -> None:
    document = build_dataset("shakespeare", scale=1)
    system = BLAS.from_document(document)
    print("Dataset:", system.summary())
    print()

    query = SHAKESPEARE_QUERIES["QS3"]
    print("QS3:", query)
    print()

    rows = []
    for translator in TRANSLATORS:
        outcome = system.translate(query, translator)
        metrics = outcome.plan.metrics()
        rows.append(
            [
                translator,
                metrics.d_joins,
                metrics.equality_selections,
                metrics.range_selections,
                metrics.tag_selections,
            ]
        )
    print(format_table(
        ["translator", "D-joins", "equality selections", "range selections", "tag selections"],
        rows,
        title="Figure 11 plan shapes for QS3",
    ))
    print()

    for translator in ("split", "unfold"):
        outcome = system.translate(query, translator)
        print(f"--- {translator} plan ---")
        print(outcome.plan.describe())
        print("SQL:", outcome.sql[:300] + ("..." if len(outcome.sql) > 300 else ""))
        print()

    rows = []
    for name, text in SHAKESPEARE_QUERIES.items():
        for translator in TRANSLATORS:
            result = system.query(text, translator=translator, engine="sqlite")
            rows.append([name, translator, result.count, f"{result.elapsed_seconds * 1000:.2f} ms"])
    print(format_table(
        ["query", "translator", "results", "SQLite time"],
        rows,
        title="Figure 13(a) in miniature: the Shakespeare workload on the RDBMS engine",
    ))


if __name__ == "__main__":
    main()
